"""Design-state queries over a blueprint-managed database.

"When a change propagation occurs, the state of the design is updated
instantly.  Designers can retrieve the state of the project by performing
queries.  Therefore, designers know exactly what data still needs to be
modified before reaching a planned state in the project." (section 1)

These helpers combine the raw meta-database with the blueprint's view
definitions to answer the designer-level questions: what is this OID's
state, which OIDs block the planned state, how healthy is each view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.blueprint import Blueprint
from repro.core.expressions import Expression, MappingEnvironment, truthy
from repro.metadb.database import MetaDatabase
from repro.metadb.objects import MetaObject
from repro.metadb.oid import OID
from repro.metadb.properties import Value


def design_state(db: MetaDatabase, oid: OID | str) -> dict[str, Value]:
    """The full property state of one OID (the paper's per-OID state)."""
    oid = OID.parse(oid) if isinstance(oid, str) else oid
    return db.get(oid).state_summary()


def object_environment(obj: MetaObject) -> MappingEnvironment:
    """The evaluation scope of one OID: its properties + identity builtins.

    Building the scope copies the property dict, so callers evaluating
    several expressions against the same object (the policy gate on the
    admission hot path) should build it once and reuse it.
    """
    env = MappingEnvironment(obj.properties.as_dict())
    env.values.setdefault("oid", obj.oid.dotted())
    env.values.setdefault("block", obj.oid.block)
    env.values.setdefault("view", obj.oid.view)
    env.values.setdefault("version", obj.oid.version)
    return env


def evaluate_on(obj: MetaObject, expression: Expression | str) -> Value:
    """Evaluate an ad-hoc expression against one OID's properties.

    Wrappers use this for permission predicates ("prior to running a
    simulation, the wrapper makes sure that the input netlist is up to
    date", section 3.3).
    """
    if isinstance(expression, str):
        expression = Expression.parse(expression)
    return expression.evaluate(object_environment(obj))


def is_up_to_date(db: MetaDatabase, oid: OID | str) -> bool:
    """Truthiness of the conventional ``uptodate`` property."""
    oid = OID.parse(oid) if isinstance(oid, str) else oid
    return truthy(db.get(oid).get("uptodate"))


def _numeric_like(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def _indexable_conjuncts(
    condition: Expression,
) -> list[tuple[str, Value, str]]:
    """Equality conjuncts the planner can narrow candidates with.

    Walks the top-level ``and`` chain (or a single comparison) for
    ``$name == literal`` forms and returns ``(name, literal, kind)``
    hints — kind ``"view"`` / ``"block"`` for those builtins, else
    ``"property"``.  The hints are *sound* candidate narrowing, not
    filters: the expression itself is still evaluated on every survivor,
    and the hint's equality (:func:`values_equal`) is exactly the
    expression's, so no matching object can be dropped.  Quoted literals
    that interpolate (``"$x"``) are skipped — their value is per-object.
    """
    from repro.core.expressions import And, Compare, Literal, VarRef

    if isinstance(condition, And):
        items = condition.items
    else:
        items = (condition,)
    hints: list[tuple[str, Value, str]] = []
    for item in items:
        if not (isinstance(item, Compare) and item.op == "=="):
            continue
        sides = (item.left, item.right)
        for var, literal in (sides, sides[::-1]):
            if not (isinstance(var, VarRef) and isinstance(literal, Literal)):
                continue
            if literal.quoted and isinstance(literal.value, str) and "$" in literal.value:
                continue  # interpolated: value depends on the object
            if var.name in ("view", "block"):
                # The name buckets key by exact string; expression
                # equality is numeric for number-like text ("10" ==
                # "10.0"), so only plain-text literals are sound hints.
                if isinstance(literal.value, str) and not _numeric_like(
                    literal.value
                ):
                    hints.append((var.name, literal.value, var.name))
            elif var.name not in ("oid", "version"):
                hints.append((var.name, literal.value, "property"))
            break
    return hints


def _lang_equals(stored: Value, wanted: Value) -> bool:
    """Does a stored value (or any Python-equal twin) expression-equal
    *wanted*?

    The property index buckets by Python equality, so the key ``0`` may
    stand in for objects that stored ``False``; a candidate hint for
    ``$p == false`` must therefore accept the whole Python-equality
    class, not just the bucket's representative.  Widening only grows
    the candidate set — the expression filter still decides membership.
    """
    from repro.core.expressions import values_equal

    variants: list[Value] = [stored]
    if isinstance(stored, bool):
        variants += [int(stored), float(stored)]
    elif isinstance(stored, (int, float)):
        if stored in (0, 1):
            variants.append(bool(stored))
        variants.append(float(stored))
        if float(stored).is_integer():
            variants.append(int(stored))
    return any(values_equal(variant, wanted) for variant in variants)


def find_objects_explained(
    db: MetaDatabase,
    condition: Expression | str,
    *,
    latest_only: bool = True,
) -> tuple[list[MetaObject], "QueryPlan"]:
    """:func:`find_objects` plus the query plan that produced it.

    Equality conjuncts ride the secondary indexes (and, on a lazy
    database, the SQL pushdown) as candidate hints; everything else
    falls back to the latest set or a scan.  The expression remains the
    only filter, so results are identical to the scan path.
    """
    from repro.metadb.query import Query

    if isinstance(condition, str):
        condition = Expression.parse(condition)
    query = Query(db)
    for name, value, kind in _indexable_conjuncts(condition):
        query.hint_equals(name, value, _lang_equals, kind=kind)
    query.where(lambda obj: truthy(evaluate_on(obj, condition)))
    if latest_only:
        query.latest_only()
    # One planning pass: the returned plan is the one that executed
    # (running the query faults candidates in, so planning again
    # afterwards would report everything as already resident).
    selected, plan = query.select_explained()
    return selected, plan


def find_objects(
    db: MetaDatabase,
    condition: Expression | str,
    *,
    latest_only: bool = True,
) -> list[MetaObject]:
    """Select objects by an ad-hoc blueprint-language expression.

    The designer-facing spelling of a volume query::

        find_objects(db, "$view == schematic and $uptodate == false")
        find_objects(db, "$state != true and $owner == yves")

    The expression sees the same environment as :func:`evaluate_on`
    (properties plus the $oid/$block/$view/$version builtins).  Top-level
    equality conjuncts are planner-accelerated — see
    :func:`find_objects_explained` for the chosen plan.
    """
    selected, _plan = find_objects_explained(
        db, condition, latest_only=latest_only
    )
    return selected


def stale_latest(db: MetaDatabase) -> list[MetaObject]:
    """Latest versions whose ``uptodate`` property is false."""
    stale = []
    for block, view in db.lineages():
        obj = db.latest_version(block, view)
        if obj is not None and obj.has("uptodate") and not truthy(obj.get("uptodate")):
            stale.append(obj)
    stale.sort(key=lambda o: o.oid)
    return stale


@dataclass
class ViewStatus:
    """Aggregate health of one tracked view."""

    view: str
    objects: int = 0
    latest: int = 0
    up_to_date: int = 0
    state_ok: int = 0

    @property
    def complete(self) -> bool:
        """True when every latest version reached its planned state."""
        return self.latest > 0 and self.state_ok == self.latest


@dataclass
class ProjectStatus:
    """Per-view aggregate over the latest versions."""

    views: dict[str, ViewStatus] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return bool(self.views) and all(v.complete for v in self.views.values())

    def to_rows(self) -> list[tuple[str, int, int, int, int]]:
        return [
            (s.view, s.objects, s.latest, s.up_to_date, s.state_ok)
            for s in sorted(self.views.values(), key=lambda s: s.view)
        ]


def project_status(
    db: MetaDatabase, blueprint: Blueprint, state_property: str = "state"
) -> ProjectStatus:
    """Summarise every tracked view: counts, up-to-date, state-ok.

    Views with no ``let state`` declaration count an object as state-ok
    when it is up to date — the best available notion of "done" there.
    """
    status = ProjectStatus()
    for view_name in blueprint.tracked_views():
        status.views[view_name] = ViewStatus(view=view_name)
    for obj in db.objects():
        view_status = status.views.get(obj.view)
        if view_status is not None:
            view_status.objects += 1
    for block, view in db.lineages():
        view_status = status.views.get(view)
        if view_status is None:
            continue
        obj = db.latest_version(block, view)
        if obj is None:
            continue
        view_status.latest += 1
        up = truthy(obj.get("uptodate")) if obj.has("uptodate") else True
        if up:
            view_status.up_to_date += 1
        effective = blueprint.effective(view)
        has_state = effective is not None and state_property in effective.lets
        if has_state:
            if obj.get(state_property) is True:
                view_status.state_ok += 1
        elif up:
            view_status.state_ok += 1
    return status


@dataclass(frozen=True)
class PendingWork:
    """One OID that blocks the planned state, with the failing checks."""

    oid: OID
    failing: tuple[str, ...]


def pending_work(
    db: MetaDatabase, blueprint: Blueprint, state_property: str = "state"
) -> list[PendingWork]:
    """What still needs to be modified before the planned state.

    For each latest version of a tracked view, report which of its
    continuous assignments (or the ``uptodate`` convention) currently
    evaluate false.  An empty list means the project reached its plan.
    """
    work: list[PendingWork] = []
    for block, view in sorted(db.lineages()):
        if not blueprint.tracks(view):
            continue
        obj = db.latest_version(block, view)
        if obj is None:
            continue
        failing: list[str] = []
        if obj.continuous:
            for name in obj.continuous:
                if not truthy(obj.get(name)):
                    failing.append(name)
        if obj.has("uptodate") and not truthy(obj.get("uptodate")):
            if "uptodate" not in failing:
                failing.append("uptodate")
        if failing:
            work.append(PendingWork(oid=obj.oid, failing=tuple(sorted(failing))))
    return work
