"""Link-directed event propagation (paper, section 3.2, last paragraph).

"The propagation of an event from a target OID T to other OIDs in the
meta-database first consists in finding all the links of OID T.  Then for
each link, the event is passed on to the OID at the other end of the link
if the link propagates the given type of event and if the direction of
the link matches the up or down direction specified in the event message.
This process is repeated for each OID receiving an event."

The engine drives the transitive walk; this module holds the single-hop
selection and the reachability analysis used by tests, benchmarks and the
loosening experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.metadb.database import MetaDatabase
from repro.metadb.links import Direction, Link
from repro.metadb.oid import OID


def propagation_targets(
    db: MetaDatabase, oid: OID, event_name: str, direction: Direction
) -> list[tuple[Link, OID]]:
    """The single-hop (link, next-OID) pairs an event takes from *oid*.

    A link qualifies when its ``PROPAGATE`` list contains *event_name*
    and its orientation matches *direction* as seen from *oid*.  The
    endpoint pairs come from the database's adjacency cache, so repeated
    hops over the same OID (every wave, every reachability analysis) do
    not re-walk the link store.
    """
    return [
        (link, other)
        for link, other in db.neighbours(oid, direction)
        if link.allows(event_name)
    ]


@dataclass(frozen=True)
class PropagationReport:
    """Result of a reachability analysis from one origin."""

    origin: OID
    event_name: str
    direction: Direction
    reached: frozenset[OID]
    hops: int

    @property
    def fanout(self) -> int:
        return len(self.reached)


def reachable_set(
    db: MetaDatabase,
    origin: OID,
    event_name: str,
    direction: Direction,
    include_origin: bool = False,
) -> PropagationReport:
    """Every OID an event posted *from* *origin* would reach.

    Mirrors the engine's wave semantics (each OID receives a given event
    name once per wave) without executing any rules — a pure graph
    reachability used by the analysis layer and the scaling benchmarks.
    """
    visited: set[OID] = {origin}
    reached: set[OID] = set()
    hops = 0
    frontier: deque[OID] = deque([origin])
    while frontier:
        here = frontier.popleft()
        for _link, other in propagation_targets(db, here, event_name, direction):
            hops += 1
            if other not in visited:
                visited.add(other)
                reached.add(other)
                frontier.append(other)
    if include_origin:
        reached.add(origin)
    return PropagationReport(
        origin=origin,
        event_name=event_name,
        direction=direction,
        reached=frozenset(reached),
        hops=hops,
    )


def impacted_by_change(db: MetaDatabase, origin: OID, event_name: str = "outofdate") -> frozenset[OID]:
    """The classic impact query: which data a change at *origin* stales.

    This is the *predictive* form — graph reachability, no rule
    execution.  For what is stale *right now*, after waves actually ran,
    use :func:`currently_stale`.
    """
    return reachable_set(db, origin, event_name, Direction.DOWN).reached


def currently_stale(db: MetaDatabase) -> frozenset[OID]:
    """The OIDs stale right now, in O(result).

    Reads the incrementally maintained stale set: every ``uptodate``
    flip the engine performs while processing a wave (assign actions,
    continuous assignments) updates the set through the property
    observer channel, so this is accurate even between waves of a
    half-drained queue — no scan, no re-evaluation.
    """
    return db.stale_set()
