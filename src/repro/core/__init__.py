"""The project BluePrint: the paper's primary contribution.

Layers:

* :mod:`repro.core.lang` — the ASCII rule language (lexer/parser/printer);
* :mod:`repro.core.expressions` — continuous-assignment expressions;
* :mod:`repro.core.blueprint` / :mod:`repro.core.rules` — the compiled
  blueprint with template mechanics;
* :mod:`repro.core.engine` — the event-driven run-time engine;
* :mod:`repro.core.events` — event messages and the FIFO queue;
* :mod:`repro.core.propagation` — link-directed reachability;
* :mod:`repro.core.state` — designer-level state queries;
* :mod:`repro.core.policy` / :mod:`repro.core.scheduler` — project
  policies: permissions, loosening, phases, tool scheduling.
"""

from repro.core.blueprint import Blueprint, TemplateApplication
from repro.core.engine import (
    BlueprintEngine,
    EngineError,
    EngineMetrics,
    EvalEnvironment,
    ExecRequest,
    TraceRecord,
)
from repro.core.events import (
    CKIN,
    CKOUT,
    DRC,
    EventMessage,
    EventQueue,
    HDL_SIM,
    LVS,
    NL_SIM,
    OUTOFDATE,
    QueueClosedError,
)
from repro.core.expressions import (
    Expression,
    ExpressionError,
    MappingEnvironment,
    interpolate,
    truthy,
    values_equal,
)
from repro.core.journal import (
    Journal,
    JournalEntry,
    JournalError,
    attach_journal,
    replay,
    state_fingerprint,
)
from repro.core.lint import Finding, Severity, lint_blueprint
from repro.core.policy import (
    Decision,
    PermissionPolicy,
    PermissionRule,
    PhasePolicy,
    ProjectPhase,
    apply_blueprint_to_links,
    loosen_blueprint,
)
from repro.core.propagation import (
    PropagationReport,
    currently_stale,
    impacted_by_change,
    propagation_targets,
    reachable_set,
)
from repro.core.rules import (
    EffectiveView,
    LinkTemplate,
    RuleDispatch,
    UseLinkTemplate,
)
from repro.core.scheduler import SchedulerError, ToolRun, ToolScheduler
from repro.core.state import (
    PendingWork,
    ProjectStatus,
    ViewStatus,
    design_state,
    evaluate_on,
    find_objects,
    find_objects_explained,
    is_up_to_date,
    pending_work,
    project_status,
    stale_latest,
)

__all__ = [
    "Blueprint",
    "TemplateApplication",
    "BlueprintEngine",
    "EngineError",
    "EngineMetrics",
    "EvalEnvironment",
    "ExecRequest",
    "TraceRecord",
    "EventMessage",
    "EventQueue",
    "QueueClosedError",
    "CKIN",
    "CKOUT",
    "OUTOFDATE",
    "HDL_SIM",
    "NL_SIM",
    "DRC",
    "LVS",
    "Expression",
    "ExpressionError",
    "MappingEnvironment",
    "interpolate",
    "truthy",
    "values_equal",
    "Journal",
    "JournalEntry",
    "JournalError",
    "attach_journal",
    "replay",
    "state_fingerprint",
    "Finding",
    "Severity",
    "lint_blueprint",
    "Decision",
    "PermissionPolicy",
    "PermissionRule",
    "PhasePolicy",
    "ProjectPhase",
    "apply_blueprint_to_links",
    "loosen_blueprint",
    "PropagationReport",
    "currently_stale",
    "impacted_by_change",
    "propagation_targets",
    "reachable_set",
    "EffectiveView",
    "LinkTemplate",
    "RuleDispatch",
    "UseLinkTemplate",
    "SchedulerError",
    "ToolRun",
    "ToolScheduler",
    "PendingWork",
    "ProjectStatus",
    "ViewStatus",
    "design_state",
    "evaluate_on",
    "find_objects",
    "find_objects_explained",
    "is_up_to_date",
    "pending_work",
    "project_status",
    "stale_latest",
]
