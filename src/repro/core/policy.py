"""Project policies: tool permissions, loosening, and governed change control.

Two policy mechanisms from the paper:

* **Tool permissions** (section 3.3): "The program queries the
  meta-database, requesting the permission to access data and to run the
  tool.  The permission is given based on the state of the input data."
* **Loosening** (section 3.2): "early in the design cycle, when the data
  has not yet been validated and changes occur very often, the BluePrint
  can be 'loosened' thereby limiting change propagation" — a per-phase
  blueprint with trimmed PROPAGATE lists.

The second half of this module is the *governed* policy engine (v2):
loosening and permission changes stop being ad-hoc blueprint swaps and
become versioned, gated revisions of a :class:`PolicyDocument`:

* every revision carries a monotonic version, a declared change class
  (``additive`` | ``breaking``) and a content hash;
* the change class is *verified* by structural diff
  (:func:`classify_change`) — a revision that trims PROPAGATE lists,
  removes views/templates, or drops permission rules is a loosening and
  therefore **breaking**; a declared class that disagrees with the diff
  is rejected;
* breaking revisions park as a pending proposal until an explicit
  ``approve``; the previous version is retained for one-command
  ``rollback``;
* evaluation is **fail-closed**: a policy that failed to load, failed to
  parse, or raises mid-evaluation produces an audited
  ``DENY(policy_fault)`` — never a silent grant;
* every decision and lifecycle transition is an :class:`AuditRecord` in
  an append-only trail with its own monotonic ``audit_seq``.

The network bus journals lifecycle commands through the write-ahead log,
so a crash recovers the governance state alongside the data (see
:mod:`repro.network.bus` and :func:`repro.core.journal.replay_governed`).
"""

from __future__ import annotations

import copy
import hashlib
import json
import threading
from collections import deque
from dataclasses import dataclass, field, replace

from repro.core.blueprint import Blueprint
from repro.core.events import EventMessage
from repro.core.expressions import (
    Expression,
    MappingEnvironment,
    compile_expression,
    truthy,
)
from repro.core.lang.ast import LinkDecl, UseLinkDecl
from repro.core.lang.tokens import BlueprintSyntaxError
from repro.core.state import evaluate_on, object_environment
from repro.metadb.database import MetaDatabase
from repro.metadb.oid import OID
from repro.testing.faults import crash_point, fault_point


def _constant_true(condition: Expression) -> bool:
    """Whether *condition* is variable-free and always truthy.

    Such rules (the common ``require EVENT true`` always-allow form)
    need no per-event evaluation; anything uncertain evaluates normally.
    """
    try:
        if condition.variables():
            return False
        return truthy(condition.evaluate(MappingEnvironment({})))
    except Exception:
        return False


@dataclass(frozen=True)
class Decision:
    """Outcome of a permission request."""

    granted: bool
    reasons: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.granted


@dataclass(frozen=True)
class PermissionRule:
    """A precondition a tool's input data must satisfy.

    ``view`` restricts which inputs the rule checks (None = every input);
    ``condition`` is an expression over the input OID's properties.
    """

    tool: str
    condition: Expression
    view: str | None = None
    description: str = ""

    @classmethod
    def parse(
        cls, tool: str, condition: str, view: str | None = None, description: str = ""
    ) -> "PermissionRule":
        return cls(
            tool=tool,
            condition=Expression.parse(condition),
            view=view,
            description=description or condition,
        )


@dataclass
class PermissionPolicy:
    """The wrapper-side permission check of section 3.3."""

    rules: list[PermissionRule] = field(default_factory=list)
    audit: list[tuple[str, tuple[OID, ...], bool]] = field(default_factory=list)

    def add(self, rule: PermissionRule) -> "PermissionPolicy":
        self.rules.append(rule)
        return self

    def require(
        self, tool: str, condition: str, view: str | None = None
    ) -> "PermissionPolicy":
        """Shorthand: ``policy.require("simulator", "$uptodate == true")``."""
        return self.add(PermissionRule.parse(tool, condition, view))

    def rules_for(self, tool: str) -> list[PermissionRule]:
        return [rule for rule in self.rules if rule.tool in (tool, "*")]

    def check(
        self, db: MetaDatabase, tool: str, inputs: list[OID | str]
    ) -> Decision:
        """Grant or refuse *tool* access to *inputs*.

        Every applicable rule must hold on every (view-matching) input.
        Unknown input OIDs refuse with a reason — running a tool on data
        the tracking system has never seen is exactly the mistake the
        check exists to catch.
        """
        reasons: list[str] = []
        oids = [OID.parse(o) if isinstance(o, str) else o for o in inputs]
        for oid in oids:
            obj = db.find(oid)
            if obj is None:
                reasons.append(f"{oid} is not in the meta-database")
                continue
            for rule in self.rules_for(tool):
                if rule.view is not None and rule.view != oid.view:
                    continue
                if not truthy(evaluate_on(obj, rule.condition)):
                    reasons.append(
                        f"{oid} fails {rule.description or rule.condition.to_source()}"
                    )
        decision = Decision(granted=not reasons, reasons=tuple(reasons))
        self.audit.append((tool, tuple(oids), decision.granted))
        return decision


# ---------------------------------------------------------------------------
# loosening
# ---------------------------------------------------------------------------


def loosen_blueprint(
    blueprint: Blueprint,
    *,
    block_events: set[str] | frozenset[str],
    link_types: set[str] | None = None,
    views: set[str] | None = None,
    name_suffix: str = "_loosened",
) -> Blueprint:
    """A copy of *blueprint* whose link templates stop propagating
    *block_events*.

    ``link_types`` restricts the trim to templates with those TYPE
    annotations; ``views`` restricts it to templates declared in those
    views.  Run-time rules are untouched: designers still see their own
    check-ins tracked, only cross-OID invalidation quiets down.
    """
    decl = copy.deepcopy(blueprint.declaration)
    decl.name = decl.name + name_suffix
    for view in decl.views:
        if views is not None and view.name not in views:
            continue
        view.links = [
            _trim_link(link, block_events, link_types) for link in view.links
        ]
        view.use_links = [
            UseLinkDecl(
                propagates=tuple(
                    e for e in use.propagates if e not in block_events
                ),
                move=use.move,
            )
            if (link_types is None or "use" in link_types)
            else use
            for use in view.use_links
        ]
    return Blueprint.from_ast(decl)


def _trim_link(
    link: LinkDecl, block_events: set[str] | frozenset[str], link_types: set[str] | None
) -> LinkDecl:
    if link_types is not None and link.link_type not in link_types:
        return link
    return LinkDecl(
        from_view=link.from_view,
        propagates=tuple(e for e in link.propagates if e not in block_events),
        link_type=link.link_type,
        move=link.move,
    )


def apply_blueprint_to_links(blueprint: Blueprint, db: MetaDatabase) -> int:
    """Re-annotate existing links after a blueprint swap.

    Swapping blueprints changes templates for *future* links; this helper
    re-derives PROPAGATE lists for links already in the database so a
    phase switch takes effect immediately.  Returns the number of links
    whose PROPAGATE list changed.
    """
    changed = 0
    for link in db.links():
        view = blueprint.effective(link.dest.view)
        if view is None:
            continue
        if link.link_class.value == "use":
            template = view.use_link
        else:
            template = view.link_template_from(link.source.view)
        if template is None:
            continue
        new_events = set(template.propagates)
        if new_events != link.propagates:
            link.propagates.clear()
            for event in new_events:
                link.allow(event)
            if not new_events:
                link.properties.set("PROPAGATE", "")
            changed += 1
    return changed


@dataclass
class ProjectPhase:
    """One phase of a project: a name and the blueprint that governs it."""

    name: str
    blueprint: Blueprint
    description: str = ""


@dataclass
class PhasePolicy:
    """Orders project phases and switches a live engine between them.

    Encodes "Different BluePrints can be defined ... for each phase of a
    project" as an explicit, auditable object.
    """

    phases: list[ProjectPhase] = field(default_factory=list)
    current_index: int = 0
    transitions: list[str] = field(default_factory=list)

    def add_phase(self, phase: ProjectPhase) -> "PhasePolicy":
        self.phases.append(phase)
        return self

    @property
    def current(self) -> ProjectPhase:
        if not self.phases:
            raise ValueError("no phases defined")
        return self.phases[self.current_index]

    def switch_to(self, name: str, engine, db: MetaDatabase | None = None) -> ProjectPhase:
        """Switch *engine* to the named phase's blueprint.

        When *db* is given, existing links are re-annotated so the phase
        change affects in-flight data immediately.
        """
        for index, phase in enumerate(self.phases):
            if phase.name == name:
                self.current_index = index
                engine.swap_blueprint(phase.blueprint)
                if db is not None:
                    apply_blueprint_to_links(phase.blueprint, db)
                self.transitions.append(name)
                return phase
        raise ValueError(f"unknown phase {name!r}")

# ---------------------------------------------------------------------------
# governed change control (policy engine v2)
# ---------------------------------------------------------------------------

#: Declared/computed change classes for a policy revision.
ADDITIVE = "additive"
BREAKING = "breaking"
CHANGE_CLASSES = frozenset({ADDITIVE, BREAKING})

#: Audit verdicts.
ALLOW = "ALLOW"
DENY = "DENY"

#: Reason prefix for fail-closed denials caused by policy faults.
POLICY_FAULT = "policy_fault"

#: On-disk/wire format of a serialized PolicyDocument.  A reader that
#: sees any other value must refuse the document (version skew fails
#: closed rather than being half-understood).
DOCUMENT_FORMAT = 1


class PolicyError(ValueError):
    """A policy document or lifecycle command is invalid."""


@dataclass(frozen=True)
class AuditRecord:
    """One line of the allow/deny audit trail.

    ``kind`` is ``event`` (admission decision), ``tool`` (permission
    check) or ``policy`` (lifecycle transition).  ``version`` is the
    policy version in force when the record was appended.
    """

    seq: int
    kind: str
    subject: str
    verdict: str
    reason: str
    version: int

    def to_payload(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "subject": self.subject,
            "verdict": self.verdict,
            "reason": self.reason,
            "version": self.version,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AuditRecord":
        try:
            return cls(
                seq=int(payload["seq"]),
                kind=str(payload["kind"]),
                subject=str(payload["subject"]),
                verdict=str(payload["verdict"]),
                reason=str(payload.get("reason", "")),
                version=int(payload["version"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PolicyError(f"bad audit record payload: {exc}") from exc

    def wire(self) -> str:
        text = f"#{self.seq} v{self.version} {self.verdict} {self.kind} {self.subject}"
        if self.reason:
            text += f" -- {self.reason}"
        return text


@dataclass(frozen=True)
class PolicyDocument:
    """One immutable revision of the project policy.

    Carries the phase blueprint source and the permission rules as data
    (``(tool, condition-source, view)`` triples; ``view`` empty = any).
    Rules whose tool is ``event:NAME`` / ``event:*`` gate event
    admission; plain tool names gate tool permission checks.
    """

    version: int
    change_class: str
    blueprint_source: str
    rules: tuple[tuple[str, str, str], ...] = ()

    def _canonical(self) -> str:
        return json.dumps(
            {
                "format": DOCUMENT_FORMAT,
                "version": self.version,
                "change_class": self.change_class,
                "blueprint": self.blueprint_source,
                "rules": [list(rule) for rule in self.rules],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @property
    def content_hash(self) -> str:
        """SHA-256 over the canonical serialization (minus the hash)."""
        return hashlib.sha256(self._canonical().encode("utf-8")).hexdigest()

    def make_blueprint(self) -> Blueprint:
        try:
            return Blueprint.from_source(self.blueprint_source)
        except Exception as exc:
            raise PolicyError(
                f"policy v{self.version} blueprint does not parse: {exc}"
            ) from exc

    def make_rules(self) -> list[PermissionRule]:
        parsed: list[PermissionRule] = []
        for tool, condition, view in self.rules:
            try:
                parsed.append(PermissionRule.parse(tool, condition, view or None))
            except Exception as exc:
                raise PolicyError(
                    f"policy v{self.version} rule {tool!r}: "
                    f"{condition!r} does not parse: {exc}"
                ) from exc
        return parsed

    def to_payload(self) -> dict:
        return {
            "format": DOCUMENT_FORMAT,
            "version": self.version,
            "change_class": self.change_class,
            "blueprint": self.blueprint_source,
            "rules": [list(rule) for rule in self.rules],
            "hash": self.content_hash,
        }

    @classmethod
    def from_payload(cls, payload) -> "PolicyDocument":
        """Deserialize with full fail-closed validation.

        Anything short of a well-formed, hash-verified, parseable
        document raises :class:`PolicyError` — load failures must
        surface here, never as a silent grant at evaluation time.
        """
        if not isinstance(payload, dict):
            raise PolicyError("policy document must be a JSON object")
        if payload.get("format") != DOCUMENT_FORMAT:
            raise PolicyError(
                f"unsupported policy document format {payload.get('format')!r} "
                f"(this build reads format {DOCUMENT_FORMAT})"
            )
        version = payload.get("version")
        if not isinstance(version, int) or isinstance(version, bool) or version < 1:
            raise PolicyError(f"bad policy version {version!r}")
        change_class = payload.get("change_class")
        if change_class not in CHANGE_CLASSES:
            raise PolicyError(f"unknown change class {change_class!r}")
        blueprint_source = payload.get("blueprint")
        if not isinstance(blueprint_source, str) or not blueprint_source.strip():
            raise PolicyError("policy document has no blueprint")
        raw_rules = payload.get("rules")
        if not isinstance(raw_rules, list):
            raise PolicyError("policy rules must be a list")
        rules: list[tuple[str, str, str]] = []
        for item in raw_rules:
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 3
                or not all(isinstance(part, str) for part in item)
            ):
                raise PolicyError(f"bad permission rule entry {item!r}")
            rules.append((item[0], item[1], item[2]))
        document = cls(
            version=version,
            change_class=change_class,
            blueprint_source=blueprint_source,
            rules=tuple(rules),
        )
        if payload.get("hash") != document.content_hash:
            raise PolicyError(
                "content hash mismatch -- policy document was truncated or hand-edited"
            )
        document.make_blueprint()
        document.make_rules()
        return document

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "PolicyDocument":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise PolicyError(f"cannot read policy document {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise PolicyError(
                f"policy document {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_payload(payload)

    @classmethod
    def initial(
        cls, blueprint: Blueprint, rules: tuple[tuple[str, str, str], ...] = ()
    ) -> "PolicyDocument":
        return cls(
            version=1,
            change_class=ADDITIVE,
            blueprint_source=blueprint.to_source(),
            rules=tuple(rules),
        )


def _blueprint_shape(blueprint: Blueprint):
    """Index a blueprint for structural diffing.

    Returns (views-by-name, propagate-sets by (view, from_view, type),
    use-link propagate unions by view).
    """
    views: dict[str, object] = {}
    links: dict[tuple[str, str, str], set[str]] = {}
    uses: dict[str, set[str]] = {}
    for view in blueprint.declaration.views:
        views[view.name] = view
        for link in view.links:
            key = (view.name, link.from_view, link.link_type or "")
            links.setdefault(key, set()).update(link.propagates)
        union: set[str] = set()
        for use in view.use_links:
            union.update(use.propagates)
        uses[view.name] = union
    return views, links, uses


def _view_body(view) -> tuple:
    """The non-link content of a view, for unclassified-change detection."""
    return (
        tuple(decl.to_source() for decl in view.properties),
        tuple(decl.to_source() for decl in view.lets),
        tuple(decl.to_source() for decl in view.rules),
    )


def classify_change(
    old: PolicyDocument, new: PolicyDocument
) -> tuple[str, tuple[str, ...]]:
    """Classify a revision by structural diff, not by what it claims.

    **breaking** (a loosening or a semantic change needing approval):
    trimmed PROPAGATE sets on link templates or use links, removed
    views/templates, dropped permission rules, or any change to
    when-rules/properties/lets (unclassifiable, so it fails closed into
    the gated class).  **additive**: pure additions.  A diff with both
    kinds is breaking.  No difference at all raises :class:`PolicyError`.
    """
    old_bp = old.make_blueprint()
    new_bp = new.make_blueprint()
    breaking: list[str] = []
    additive: list[str] = []
    old_views, old_links, old_uses = _blueprint_shape(old_bp)
    new_views, new_links, new_uses = _blueprint_shape(new_bp)
    for name in old_views:
        if name not in new_views:
            breaking.append(f"removed view {name!r}")
    for name in new_views:
        if name not in old_views:
            additive.append(f"added view {name!r}")
    for name in sorted(set(old_views) & set(new_views)):
        if _view_body(old_views[name]) != _view_body(new_views[name]):
            breaking.append(
                f"unclassified change inside view {name!r} "
                "(rules/properties/lets differ)"
            )
    for key in sorted(old_links):
        view, from_view, link_type = key
        label = f"link {from_view}->{view}" + (
            f" ({link_type})" if link_type else ""
        )
        if key not in new_links:
            if view in new_views:
                breaking.append(f"removed {label}")
            continue
        trimmed = old_links[key] - new_links[key]
        added = new_links[key] - old_links[key]
        if trimmed:
            breaking.append(f"{label} stops propagating {sorted(trimmed)}")
        if added:
            additive.append(f"{label} starts propagating {sorted(added)}")
    for key in sorted(set(new_links) - set(old_links)):
        view, from_view, link_type = key
        if view in old_views:
            additive.append(f"added link {from_view}->{view}")
    for name in sorted(set(old_uses) & set(new_uses)):
        trimmed = old_uses[name] - new_uses[name]
        added = new_uses[name] - old_uses[name]
        if trimmed:
            breaking.append(
                f"use links in view {name!r} stop propagating {sorted(trimmed)}"
            )
        if added:
            additive.append(
                f"use links in view {name!r} start propagating {sorted(added)}"
            )
    old_rules = set(old.rules)
    new_rules = set(new.rules)
    for tool, condition, view in sorted(old_rules - new_rules):
        breaking.append(f"dropped permission rule {tool}: {condition}")
    for tool, condition, view in sorted(new_rules - old_rules):
        additive.append(f"added permission rule {tool}: {condition}")
    if breaking:
        return BREAKING, tuple(breaking + additive)
    if additive:
        return ADDITIVE, tuple(additive)
    raise PolicyError("proposal changes nothing")


@dataclass(frozen=True)
class PolicyProposal:
    """A classified revision waiting to activate (or already additive)."""

    document: PolicyDocument
    computed_class: str
    reasons: tuple[str, ...]

    def describe(self) -> str:
        return f"v{self.document.version} ({self.computed_class}): " + "; ".join(
            self.reasons
        )


def _lifecycle_subject(action: str, spec: dict) -> str:
    if action == "policy_propose":
        args = " ".join(str(a) for a in spec.get("args", ()))
        return (
            f"propose {spec.get('change_class', '?')} "
            f"{spec.get('op', '?')} {args}"
        ).strip()
    if action == "policy_approve":
        return f"approve v{spec.get('version', '?')}"
    return "rollback"


class GovernedPolicy:
    """The versioned, fail-closed policy engine.

    Owns the active :class:`PolicyDocument`, the pending proposal, the
    previous version (rollback target) and the audit trail.  All state
    transitions go through ``apply_lifecycle`` with a spec dict that is
    also what the network bus journals — replaying the same specs in the
    same order reconstructs the same versions, the same pending set and
    the same audit records.

    Evaluation is fail-closed: any exception inside ``evaluate`` or
    ``check_tool`` (including injected ``fault_point("policy-eval")``
    errors) becomes ``DENY(policy_fault: ...)``, and a policy marked
    faulted (corrupt checkpoint, unreadable document) denies everything
    until a valid revision activates.
    """

    def __init__(self, engine=None, document: PolicyDocument | None = None,
                 *, audit_limit: int = 10000) -> None:
        explicit = document is not None
        if document is None:
            if engine is None:
                raise PolicyError("GovernedPolicy needs an engine or a document")
            document = PolicyDocument.initial(engine.blueprint)
        self.engine = engine
        self._lock = threading.RLock()
        self._audit: deque[tuple] = deque(maxlen=audit_limit)
        self.audit_seq = 0
        self.policy_faults = 0
        self.fault_reason: str | None = None
        self.document = document
        self.previous: PolicyDocument | None = None
        self.pending: PolicyProposal | None = None
        self._set_rules(document.make_rules())
        if explicit and engine is not None:
            engine.swap_blueprint(document.make_blueprint())
            apply_blueprint_to_links(engine.blueprint, engine.db)
        if engine is not None and hasattr(engine, "attach_governor"):
            engine.attach_governor(self)

    # -- lock-free gauges (ints, read by the health command) ----------

    @property
    def version(self) -> int:
        return self.document.version

    @property
    def pending_count(self) -> int:
        return 1 if self.pending is not None else 0

    # -- audit trail --------------------------------------------------

    def _append_row(
        self, kind: str, subject: str, verdict: str, reason: str
    ) -> tuple:
        """Append one decision to the ring; the per-event hot path.

        The ring stores plain ``(seq, kind, subject, verdict, reason,
        version)`` tuples — building a frozen dataclass per admission
        costs more than the rest of the append combined, so records are
        materialised lazily by :meth:`audit_tail`.
        """
        with self._lock:
            crash_point("mid-audit-append")
            self.audit_seq += 1
            row = (
                self.audit_seq,
                kind,
                subject,
                verdict,
                reason,
                self.document.version,
            )
            self._audit.append(row)
            return row

    def _append_audit(
        self, kind: str, subject: str, verdict: str, reason: str
    ) -> AuditRecord:
        return AuditRecord(*self._append_row(kind, subject, verdict, reason))

    def audit_tail(self, limit: int | None = None) -> list[AuditRecord]:
        with self._lock:
            rows = list(self._audit)
        if limit is not None and limit >= 0:
            rows = rows[len(rows) - min(limit, len(rows)):]
        return [AuditRecord(*row) for row in rows]

    # -- evaluation (fail-closed) -------------------------------------

    def _set_rules(self, rules: list[PermissionRule]) -> None:
        """Install a rule set and its admission-path indexes.

        ``evaluate`` runs once per journaled write, so matching must not
        scan every rule: event rules are bucketed by event name, each
        bucket pre-merged with the ``event:*`` wildcard set, and every
        entry pre-tagged with whether its condition is a constant truth
        (``true``-style always-allow rules skip evaluation entirely —
        they still match, so they still deny unknown OIDs) and carrying
        its condition pre-compiled to a closure (no AST dispatch on the
        admission path).
        """
        self._rules = rules
        event_index: dict[str, list[PermissionRule]] = {}
        for rule in rules:
            if rule.tool.startswith("event:"):
                event_index.setdefault(rule.tool[6:], []).append(rule)
        wildcard = event_index.pop("*", [])

        def tagged(bucket):
            return tuple(
                (
                    rule,
                    _constant_true(rule.condition),
                    compile_expression(rule.condition),
                )
                for rule in bucket
            )

        self._wildcard_event_rules = tagged(wildcard)
        self._event_rule_index = {
            name: tagged(bucket + wildcard)
            for name, bucket in event_index.items()
        }
        self._tool_rules = tuple(
            rule for rule in rules if not rule.tool.startswith("event:")
        )

    def evaluate(self, db: MetaDatabase, event) -> tuple[str, str]:
        """Decide an event admission; no audit side effect.

        Returns ``(verdict, reason)``.  Event rules are permission rules
        whose tool field is ``event:NAME`` or ``event:*``; every
        matching rule must hold on the target OID.
        """
        try:
            fault_point("policy-eval")
            if self.fault_reason is not None:
                return DENY, self.fault_reason
            matched = self._event_rule_index.get(
                event.name, self._wildcard_event_rules
            )
            if not matched:
                return ALLOW, ""
            reasons: list[str] = []
            obj = db.find(event.target)
            env = None
            for rule, always_true, compiled in matched:
                if rule.view is not None and rule.view != event.target.view:
                    continue
                if obj is None:
                    reasons.append(
                        f"{event.target.wire()} is not in the meta-database"
                    )
                    break
                if always_true:
                    continue
                if env is None:  # one scope per event, shared across rules
                    env = object_environment(obj)
                if not truthy(compiled(env)):
                    reasons.append(
                        f"{event.target.wire()} fails "
                        f"{rule.description or rule.condition.to_source()}"
                    )
            if reasons:
                return DENY, "; ".join(reasons)
            return ALLOW, ""
        except Exception as exc:
            self.policy_faults += 1
            return DENY, f"{POLICY_FAULT}: {type(exc).__name__}: {exc}"

    def audit_event(self, event, verdict: str, reason: str) -> None:
        self._append_row(
            "event", f"{event.name} {event.target.wire()}", verdict, reason
        )

    def check_tool(
        self, db: MetaDatabase, tool: str, inputs: list
    ) -> Decision:
        """Tool-permission check of section 3.3, governed and audited."""
        try:
            fault_point("policy-eval")
            if self.fault_reason is not None:
                decision = Decision(False, (self.fault_reason,))
            else:
                reasons: list[str] = []
                oids = [
                    OID.parse(item) if isinstance(item, str) else item
                    for item in inputs
                ]
                for oid in oids:
                    obj = db.find(oid)
                    if obj is None:
                        reasons.append(f"{oid.wire()} is not in the meta-database")
                        continue
                    for rule in self._tool_rules:
                        if rule.tool not in (tool, "*"):
                            continue
                        if rule.view is not None and rule.view != oid.view:
                            continue
                        if not truthy(evaluate_on(obj, rule.condition)):
                            reasons.append(
                                f"{oid.wire()} fails "
                                f"{rule.description or rule.condition.to_source()}"
                            )
                decision = Decision(granted=not reasons, reasons=tuple(reasons))
        except Exception as exc:
            self.policy_faults += 1
            decision = Decision(
                False, (f"{POLICY_FAULT}: {type(exc).__name__}: {exc}",)
            )
        subject = tool
        if inputs:
            subject += " " + " ".join(
                item if isinstance(item, str) else item.wire() for item in inputs
            )
        self._append_audit(
            "tool",
            subject,
            ALLOW if decision.granted else DENY,
            "; ".join(decision.reasons),
        )
        return decision

    # Drop-in for :class:`PermissionPolicy` where a ``.check`` is expected
    # (the tool scheduler), so wiring a governor in makes every wrapper
    # permission request audited and fail-closed with no caller changes.
    check = check_tool

    # -- lifecycle ----------------------------------------------------

    def validate(self, action: str, spec: dict) -> None:
        """Admission-time check; raises :class:`PolicyError` to refuse."""
        with self._lock:
            self._prepare(action, spec)

    def _prepare(self, action: str, spec: dict) -> PolicyProposal:
        if action == "policy_propose":
            if self.pending is not None:
                raise PolicyError(
                    f"proposal v{self.pending.document.version} is already "
                    "pending approval"
                )
            return self._build_proposal(
                str(spec.get("change_class", "")),
                str(spec.get("op", "")),
                tuple(str(a) for a in spec.get("args", ())),
            )
        if action == "policy_approve":
            if self.pending is None:
                raise PolicyError("no proposal is pending approval")
            try:
                want = int(spec.get("version"))
            except (TypeError, ValueError):
                raise PolicyError(
                    f"bad approve version {spec.get('version')!r}"
                ) from None
            if want != self.pending.document.version:
                raise PolicyError(
                    f"pending proposal is v{self.pending.document.version}, "
                    f"not v{want}"
                )
            return self.pending
        if action == "policy_rollback":
            if self.previous is None:
                raise PolicyError("no previous policy version to roll back to")
            next_version = (
                self.pending.document.version
                if self.pending is not None
                else self.document.version
            ) + 1
            restored = replace(
                self.previous, version=next_version, change_class=BREAKING
            )
            try:
                computed, reasons = classify_change(self.document, restored)
            except PolicyError:
                raise PolicyError(
                    f"rollback target v{self.previous.version} is identical "
                    "to the active policy"
                ) from None
            restored = replace(restored, change_class=computed)
            return PolicyProposal(
                document=restored, computed_class=computed, reasons=reasons
            )
        raise PolicyError(f"unknown policy action {action!r}")

    def _build_proposal(
        self, change_class: str, op: str, args: tuple[str, ...]
    ) -> PolicyProposal:
        if change_class not in CHANGE_CLASSES:
            raise PolicyError(
                f"unknown change class {change_class!r} "
                f"(expected {ADDITIVE!r} or {BREAKING!r})"
            )
        current = self.document
        rules = list(current.rules)
        blueprint_source = current.blueprint_source
        if op == "loosen":
            if len(args) != 1 or not args[0]:
                raise PolicyError("loosen takes one comma-separated event list")
            events = {name for name in args[0].split(",") if name}
            blueprint = loosen_blueprint(
                current.make_blueprint(), block_events=events, name_suffix=""
            )
            blueprint_source = blueprint.to_source()
        elif op in ("require", "drop"):
            if len(args) not in (2, 3):
                raise PolicyError(f"{op} takes TOOL CONDITION [VIEW]")
            tool, condition = args[0], args[1]
            view = args[2] if len(args) == 3 else ""
            try:
                Expression.parse(condition)
            except Exception as exc:
                raise PolicyError(
                    f"condition {condition!r} does not parse: {exc}"
                ) from exc
            entry = (tool, condition, view)
            if op == "require":
                if entry in rules:
                    raise PolicyError(f"rule already present: {tool} {condition}")
                rules.append(entry)
            else:
                if entry not in rules:
                    raise PolicyError(f"no such rule: {tool} {condition}")
                rules.remove(entry)
        else:
            raise PolicyError(
                f"unknown policy operation {op!r} "
                "(expected loosen, require or drop)"
            )
        document = PolicyDocument(
            version=current.version + 1,
            change_class=change_class,
            blueprint_source=blueprint_source,
            rules=tuple(rules),
        )
        computed, reasons = classify_change(current, document)
        if computed != change_class:
            raise PolicyError(
                f"declared change class {change_class!r} but the structural "
                f"diff is {computed!r}: " + "; ".join(reasons)
            )
        return PolicyProposal(
            document=document, computed_class=computed, reasons=reasons
        )

    def apply_lifecycle(self, action: str, spec: dict) -> AuditRecord:
        """Apply a (journaled) lifecycle command; audits the outcome.

        A refused command audits ``DENY`` and re-raises — deterministic
        at replay, since the same specs replayed in the same order hit
        the same state.
        """
        with self._lock:
            subject = _lifecycle_subject(action, spec)
            try:
                proposal = self._prepare(action, spec)
            except PolicyError as exc:
                self._append_audit("policy", subject, DENY, str(exc))
                raise
            if action == "policy_propose":
                if proposal.computed_class == ADDITIVE:
                    self._activate(proposal.document)
                    detail = "additive -- auto-activated; " + "; ".join(
                        proposal.reasons
                    )
                else:
                    self.pending = proposal
                    detail = "breaking -- awaiting approval; " + "; ".join(
                        proposal.reasons
                    )
                return self._append_audit("policy", subject, ALLOW, detail)
            if action == "policy_approve":
                self.pending = None
                self._activate(proposal.document)
                return self._append_audit(
                    "policy",
                    subject,
                    ALLOW,
                    "approved -- activated; " + "; ".join(proposal.reasons),
                )
            discarded = self.pending
            self.pending = None
            restored_from = self.previous.version
            self._activate(proposal.document)
            detail = (
                f"restored content of v{restored_from} "
                f"as v{proposal.document.version}"
            )
            if discarded is not None:
                detail += f"; discarded pending v{discarded.document.version}"
            return self._append_audit("policy", subject, ALLOW, detail)

    def _activate(self, document: PolicyDocument) -> None:
        blueprint = document.make_blueprint()  # parse before any mutation
        rules = document.make_rules()
        self.previous = self.document
        self.document = document
        self._set_rules(rules)
        self.fault_reason = None
        if self.engine is not None:
            self.engine.swap_blueprint(blueprint)
            apply_blueprint_to_links(blueprint, self.engine.db)

    # -- fault state, status, checkpointing ---------------------------

    def mark_faulted(self, reason: str) -> None:
        """Force fail-closed: every evaluation denies until reactivated."""
        with self._lock:
            self.policy_faults += 1
            self.fault_reason = f"{POLICY_FAULT}: {reason}"

    def status_fields(self) -> list[tuple[str, str]]:
        with self._lock:
            fields = [
                ("version", str(self.document.version)),
                ("change_class", self.document.change_class),
                ("hash", self.document.content_hash[:12]),
                ("rules", str(len(self.document.rules))),
                (
                    "previous",
                    f"v{self.previous.version}" if self.previous else "none",
                ),
                ("pending", self.pending.describe() if self.pending else "none"),
                ("audit_seq", str(self.audit_seq)),
                ("policy_faults", str(self.policy_faults)),
            ]
            if self.fault_reason:
                fields.append(("fault", self.fault_reason))
            return fields

    def snapshot_payload(self) -> dict:
        """Governance state for the checkpoint sidecar."""
        with self._lock:
            payload: dict = {
                "format": DOCUMENT_FORMAT,
                "document": self.document.to_payload(),
                "audit_seq": self.audit_seq,
                "policy_faults": self.policy_faults,
            }
            if self.previous is not None:
                payload["previous"] = self.previous.to_payload()
            if self.pending is not None:
                payload["pending"] = {
                    "document": self.pending.document.to_payload(),
                    "computed_class": self.pending.computed_class,
                    "reasons": list(self.pending.reasons),
                }
            return payload

    def restore(self, payload: dict) -> bool:
        """Restore from a checkpoint sidecar payload, fail-closed.

        A payload that does not validate marks the policy faulted (every
        decision denies, audited) instead of raising — the server must
        come up and refuse, not crash or silently default-allow.
        Returns True on success.
        """
        try:
            if payload.get("format") != DOCUMENT_FORMAT:
                raise PolicyError(
                    f"unsupported policy checkpoint format "
                    f"{payload.get('format')!r}"
                )
            document = PolicyDocument.from_payload(payload["document"])
            previous = (
                PolicyDocument.from_payload(payload["previous"])
                if payload.get("previous")
                else None
            )
            pending = None
            if payload.get("pending"):
                raw = payload["pending"]
                pending_doc = PolicyDocument.from_payload(raw["document"])
                pending = PolicyProposal(
                    document=pending_doc,
                    computed_class=str(raw.get("computed_class", BREAKING)),
                    reasons=tuple(
                        str(reason) for reason in raw.get("reasons", ())
                    ),
                )
            audit_seq = payload.get("audit_seq")
            if not isinstance(audit_seq, int) or audit_seq < 0:
                raise PolicyError(f"bad audit_seq {audit_seq!r}")
            faults = int(payload.get("policy_faults", 0))
        except Exception as exc:
            self.mark_faulted(
                f"corrupt policy checkpoint: {type(exc).__name__}: {exc}"
            )
            return False
        with self._lock:
            self.document = document
            self.previous = previous
            self.pending = pending
            self._set_rules(document.make_rules())
            self.audit_seq = max(self.audit_seq, audit_seq)
            self.policy_faults = faults
            self.fault_reason = None
            if self.engine is not None:
                self.engine.swap_blueprint(document.make_blueprint())
                apply_blueprint_to_links(self.engine.blueprint, self.engine.db)
        return True

    @classmethod
    def from_file(cls, engine, path) -> "GovernedPolicy":
        """Load a policy document; unreadable files serve fail-closed."""
        try:
            document = PolicyDocument.load(path)
            return cls(engine, document=document)
        except Exception as exc:
            policy = cls(engine)
            policy.mark_faulted(f"failed to load policy document: {exc}")
            return policy
