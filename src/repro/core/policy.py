"""Project policies: tool permissions and blueprint loosening.

Two policy mechanisms from the paper:

* **Tool permissions** (section 3.3): "The program queries the
  meta-database, requesting the permission to access data and to run the
  tool.  The permission is given based on the state of the input data."
* **Loosening** (section 3.2): "early in the design cycle, when the data
  has not yet been validated and changes occur very often, the BluePrint
  can be 'loosened' thereby limiting change propagation" — a per-phase
  blueprint with trimmed PROPAGATE lists.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.core.blueprint import Blueprint
from repro.core.expressions import Expression, truthy
from repro.core.lang.ast import LinkDecl, UseLinkDecl
from repro.core.state import evaluate_on
from repro.metadb.database import MetaDatabase
from repro.metadb.oid import OID


@dataclass(frozen=True)
class Decision:
    """Outcome of a permission request."""

    granted: bool
    reasons: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.granted


@dataclass(frozen=True)
class PermissionRule:
    """A precondition a tool's input data must satisfy.

    ``view`` restricts which inputs the rule checks (None = every input);
    ``condition`` is an expression over the input OID's properties.
    """

    tool: str
    condition: Expression
    view: str | None = None
    description: str = ""

    @classmethod
    def parse(
        cls, tool: str, condition: str, view: str | None = None, description: str = ""
    ) -> "PermissionRule":
        return cls(
            tool=tool,
            condition=Expression.parse(condition),
            view=view,
            description=description or condition,
        )


@dataclass
class PermissionPolicy:
    """The wrapper-side permission check of section 3.3."""

    rules: list[PermissionRule] = field(default_factory=list)
    audit: list[tuple[str, tuple[OID, ...], bool]] = field(default_factory=list)

    def add(self, rule: PermissionRule) -> "PermissionPolicy":
        self.rules.append(rule)
        return self

    def require(
        self, tool: str, condition: str, view: str | None = None
    ) -> "PermissionPolicy":
        """Shorthand: ``policy.require("simulator", "$uptodate == true")``."""
        return self.add(PermissionRule.parse(tool, condition, view))

    def rules_for(self, tool: str) -> list[PermissionRule]:
        return [rule for rule in self.rules if rule.tool in (tool, "*")]

    def check(
        self, db: MetaDatabase, tool: str, inputs: list[OID | str]
    ) -> Decision:
        """Grant or refuse *tool* access to *inputs*.

        Every applicable rule must hold on every (view-matching) input.
        Unknown input OIDs refuse with a reason — running a tool on data
        the tracking system has never seen is exactly the mistake the
        check exists to catch.
        """
        reasons: list[str] = []
        oids = [OID.parse(o) if isinstance(o, str) else o for o in inputs]
        for oid in oids:
            obj = db.find(oid)
            if obj is None:
                reasons.append(f"{oid} is not in the meta-database")
                continue
            for rule in self.rules_for(tool):
                if rule.view is not None and rule.view != oid.view:
                    continue
                if not truthy(evaluate_on(obj, rule.condition)):
                    reasons.append(
                        f"{oid} fails {rule.description or rule.condition.to_source()}"
                    )
        decision = Decision(granted=not reasons, reasons=tuple(reasons))
        self.audit.append((tool, tuple(oids), decision.granted))
        return decision


# ---------------------------------------------------------------------------
# loosening
# ---------------------------------------------------------------------------


def loosen_blueprint(
    blueprint: Blueprint,
    *,
    block_events: set[str] | frozenset[str],
    link_types: set[str] | None = None,
    views: set[str] | None = None,
    name_suffix: str = "_loosened",
) -> Blueprint:
    """A copy of *blueprint* whose link templates stop propagating
    *block_events*.

    ``link_types`` restricts the trim to templates with those TYPE
    annotations; ``views`` restricts it to templates declared in those
    views.  Run-time rules are untouched: designers still see their own
    check-ins tracked, only cross-OID invalidation quiets down.
    """
    decl = copy.deepcopy(blueprint.declaration)
    decl.name = decl.name + name_suffix
    for view in decl.views:
        if views is not None and view.name not in views:
            continue
        view.links = [
            _trim_link(link, block_events, link_types) for link in view.links
        ]
        view.use_links = [
            UseLinkDecl(
                propagates=tuple(
                    e for e in use.propagates if e not in block_events
                ),
                move=use.move,
            )
            if (link_types is None or "use" in link_types)
            else use
            for use in view.use_links
        ]
    return Blueprint.from_ast(decl)


def _trim_link(
    link: LinkDecl, block_events: set[str] | frozenset[str], link_types: set[str] | None
) -> LinkDecl:
    if link_types is not None and link.link_type not in link_types:
        return link
    return LinkDecl(
        from_view=link.from_view,
        propagates=tuple(e for e in link.propagates if e not in block_events),
        link_type=link.link_type,
        move=link.move,
    )


def apply_blueprint_to_links(blueprint: Blueprint, db: MetaDatabase) -> int:
    """Re-annotate existing links after a blueprint swap.

    Swapping blueprints changes templates for *future* links; this helper
    re-derives PROPAGATE lists for links already in the database so a
    phase switch takes effect immediately.  Returns the number of links
    whose PROPAGATE list changed.
    """
    changed = 0
    for link in db.links():
        view = blueprint.effective(link.dest.view)
        if view is None:
            continue
        if link.link_class.value == "use":
            template = view.use_link
        else:
            template = view.link_template_from(link.source.view)
        if template is None:
            continue
        new_events = set(template.propagates)
        if new_events != link.propagates:
            link.propagates.clear()
            for event in new_events:
                link.allow(event)
            if not new_events:
                link.properties.set("PROPAGATE", "")
            changed += 1
    return changed


@dataclass
class ProjectPhase:
    """One phase of a project: a name and the blueprint that governs it."""

    name: str
    blueprint: Blueprint
    description: str = ""


@dataclass
class PhasePolicy:
    """Orders project phases and switches a live engine between them.

    Encodes "Different BluePrints can be defined ... for each phase of a
    project" as an explicit, auditable object.
    """

    phases: list[ProjectPhase] = field(default_factory=list)
    current_index: int = 0
    transitions: list[str] = field(default_factory=list)

    def add_phase(self, phase: ProjectPhase) -> "PhasePolicy":
        self.phases.append(phase)
        return self

    @property
    def current(self) -> ProjectPhase:
        if not self.phases:
            raise ValueError("no phases defined")
        return self.phases[self.current_index]

    def switch_to(self, name: str, engine, db: MetaDatabase | None = None) -> ProjectPhase:
        """Switch *engine* to the named phase's blueprint.

        When *db* is given, existing links are re-annotated so the phase
        change affects in-flight data immediately.
        """
        for index, phase in enumerate(self.phases):
            if phase.name == name:
                self.current_index = index
                engine.swap_blueprint(phase.blueprint)
                if db is not None:
                    apply_blueprint_to_links(phase.blueprint, db)
                self.transitions.append(name)
                return phase
        raise ValueError(f"unknown phase {name!r}")
