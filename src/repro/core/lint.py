"""Static analysis ("lint") for blueprint rule files.

Blueprints are programs, and the 1995 failure mode is timeless: an event
is posted but nothing propagates it; a link propagates an event no view
handles; two views' templates form a propagation cycle; a continuous
assignment reads a property no rule ever writes.  The project
administrator finds these at 2 a.m. unless a linter finds them first.

Each finding has a stable code (``BP###``), a severity, and a location
string.  ``lint_blueprint`` returns findings sorted by severity then
code; the CLI's ``check`` command prints them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.blueprint import Blueprint
from repro.core.lang.ast import AssignAction, ExecAction, PostAction


class Severity(enum.Enum):
    ERROR = "error"      # the blueprint will not behave as written
    WARNING = "warning"  # very likely a mistake
    INFO = "info"        # worth a look

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    code: str
    severity: Severity
    location: str  # "view schematic" etc.
    message: str

    def __str__(self) -> str:
        return f"{self.code} [{self.severity}] {self.location}: {self.message}"


_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


def lint_blueprint(blueprint: Blueprint) -> list[Finding]:
    """Run every check against a compiled blueprint."""
    findings: list[Finding] = []
    findings.extend(_check_compile_warnings(blueprint))
    findings.extend(_check_posted_events_propagate(blueprint))
    findings.extend(_check_propagated_events_handled(blueprint))
    findings.extend(_check_handled_events_reachable(blueprint))
    findings.extend(_check_template_cycles(blueprint))
    findings.extend(_check_let_inputs_written(blueprint))
    findings.extend(_check_assigned_properties_declared(blueprint))
    findings.extend(_check_exec_without_args(blueprint))
    findings.sort(key=lambda f: (_SEVERITY_ORDER[f.severity], f.code, f.location))
    return findings


def _check_compile_warnings(blueprint: Blueprint) -> list[Finding]:
    """Surface the compiler's structural warnings as findings."""
    return [
        Finding("BP001", Severity.WARNING, "blueprint", warning)
        for warning in blueprint.warnings
    ]


def _propagated_events(blueprint: Blueprint) -> set[str]:
    events: set[str] = set()
    for view_name in blueprint.tracked_views():
        view = blueprint.effective(view_name)
        assert view is not None
        for template in view.link_templates:
            events |= set(template.propagates)
        if view.use_link is not None:
            events |= set(view.use_link.propagates)
    return events


def _posted_events(blueprint: Blueprint) -> dict[str, list[tuple[str, PostAction]]]:
    posted: dict[str, list[tuple[str, PostAction]]] = {}
    for view_name in blueprint.tracked_views():
        view = blueprint.effective(view_name)
        assert view is not None
        for rules in view.rules.values():
            for rule in rules:
                for action in rule.actions:
                    if isinstance(action, PostAction):
                        posted.setdefault(action.event, []).append(
                            (view_name, action)
                        )
    return posted


def _handled_events(blueprint: Blueprint) -> set[str]:
    events: set[str] = set()
    for view_name in blueprint.tracked_views():
        view = blueprint.effective(view_name)
        assert view is not None
        events |= view.events_handled()
    return events


def _check_posted_events_propagate(blueprint: Blueprint) -> list[Finding]:
    """A fan-out post of an event no link propagates reaches nothing."""
    findings = []
    propagated = _propagated_events(blueprint)
    for event, posts in _posted_events(blueprint).items():
        for view_name, action in posts:
            if action.to_view is None and event not in propagated:
                findings.append(
                    Finding(
                        "BP010",
                        Severity.WARNING,
                        f"view {view_name}",
                        f"'post {event} {action.direction}' fans out, but no "
                        f"link template propagates {event!r} — the post is "
                        f"a no-op",
                    )
                )
    return findings


def _check_propagated_events_handled(blueprint: Blueprint) -> list[Finding]:
    """An event carried by links but handled nowhere only burns cycles."""
    findings = []
    handled = _handled_events(blueprint)
    for view_name in blueprint.tracked_views():
        view = blueprint.effective(view_name)
        assert view is not None
        templates = list(view.link_templates)
        if view.use_link is not None:
            templates.append(view.use_link)  # type: ignore[arg-type]
        for template in templates:
            for event in template.propagates:
                if event not in handled:
                    findings.append(
                        Finding(
                            "BP011",
                            Severity.INFO,
                            f"view {view_name}",
                            f"links propagate {event!r} but no view has a "
                            f"'when {event}' rule",
                        )
                    )
    return findings


def _check_handled_events_reachable(blueprint: Blueprint) -> list[Finding]:
    """A 'when E' rule for an event nothing posts or propagates is dead —
    unless E arrives from outside (wrappers), which we cannot know, so
    this is informational and skips conventional wrapper events."""
    conventional = {"ckin", "ckout", "delete", "release"}
    findings = []
    posted = set(_posted_events(blueprint))
    propagated = _propagated_events(blueprint)
    for view_name in blueprint.tracked_views():
        view = blueprint.effective(view_name)
        assert view is not None
        for event in view.events_handled():
            if event in conventional:
                continue
            if event not in posted and event not in propagated:
                findings.append(
                    Finding(
                        "BP012",
                        Severity.INFO,
                        f"view {view_name}",
                        f"'when {event}' fires only if a wrapper posts "
                        f"{event!r} directly (no rule posts it, no link "
                        f"carries it)",
                    )
                )
    return findings


def _check_template_cycles(blueprint: Blueprint) -> list[Finding]:
    """Cycles in the view-level link-template graph.

    The engine's per-wave visited set makes cycles safe at run time, but
    a template cycle almost always means a view derives from itself
    transitively — worth flagging.
    """
    graph: dict[str, set[str]] = {}
    for view_name in blueprint.tracked_views():
        view = blueprint.effective(view_name)
        assert view is not None
        for template in view.link_templates:
            graph.setdefault(template.from_view, set()).add(view_name)

    findings = []
    visiting: set[str] = set()
    done: set[str] = set()

    def walk(node: str, path: list[str]) -> None:
        if node in done:
            return
        if node in visiting:
            cycle = path[path.index(node):] + [node]
            findings.append(
                Finding(
                    "BP020",
                    Severity.WARNING,
                    "blueprint",
                    "link templates form a cycle: " + " -> ".join(cycle),
                )
            )
            return
        visiting.add(node)
        for successor in sorted(graph.get(node, ())):
            walk(successor, path + [node])
        visiting.discard(node)
        done.add(node)

    for node in sorted(graph):
        walk(node, [])
    return findings


def _writers_of(blueprint: Blueprint, view_name: str) -> set[str]:
    """Property names written by any rule or declared on the view."""
    view = blueprint.effective(view_name)
    assert view is not None
    written = {spec.name for spec in view.properties}
    for rules in view.rules.values():
        for rule in rules:
            for action in rule.actions:
                if isinstance(action, AssignAction):
                    written.add(action.name)
    written |= set(view.lets)  # lets write their own property
    return written


_BUILTIN_VARS = {
    "arg", "user", "date", "event", "oid", "OID",
    "block", "view", "version", "owner",
}


def _check_let_inputs_written(blueprint: Blueprint) -> list[Finding]:
    """A let reading a property nothing writes is stuck at its default."""
    findings = []
    for view_name in blueprint.tracked_views():
        view = blueprint.effective(view_name)
        assert view is not None
        written = _writers_of(blueprint, view_name)
        for let_name, expr in view.lets.items():
            for variable in sorted(expr.variables() - _BUILTIN_VARS):
                if variable not in written:
                    findings.append(
                        Finding(
                            "BP030",
                            Severity.WARNING,
                            f"view {view_name}",
                            f"let {let_name} reads ${variable}, but no "
                            f"property or rule of this view writes it",
                        )
                    )
    return findings


def _check_assigned_properties_declared(blueprint: Blueprint) -> list[Finding]:
    """Assigning an undeclared property works but has no default — the
    value is undefined until the first event, which surprises queries."""
    findings = []
    for view_name in blueprint.tracked_views():
        view = blueprint.effective(view_name)
        assert view is not None
        declared = {spec.name for spec in view.properties} | set(view.lets)
        for rules in view.rules.values():
            for rule in rules:
                for action in rule.actions:
                    if (
                        isinstance(action, AssignAction)
                        and action.name not in declared
                    ):
                        findings.append(
                            Finding(
                                "BP031",
                                Severity.INFO,
                                f"view {view_name}",
                                f"'when {rule.event}' assigns "
                                f"{action.name!r} which has no property "
                                f"declaration (no default value)",
                            )
                        )
    return findings


def _check_exec_without_args(blueprint: Blueprint) -> list[Finding]:
    """An exec without an $oid argument runs a tool with no target."""
    findings = []
    for view_name in blueprint.tracked_views():
        view = blueprint.effective(view_name)
        assert view is not None
        for rules in view.rules.values():
            for rule in rules:
                for action in rule.actions:
                    if isinstance(action, ExecAction) and not any(
                        "$oid" in arg.lower() for arg in action.args
                    ):
                        findings.append(
                            Finding(
                                "BP040",
                                Severity.INFO,
                                f"view {view_name}",
                                f"exec {action.script} passes no $oid/$OID "
                                f"argument; the wrapper must infer its "
                                f"target",
                            )
                        )
    return findings
