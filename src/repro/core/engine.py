"""The BluePrint run-time engine (paper, sections 3.1–3.2).

The engine owns the FIFO event queue of Figure 1 and processes each event
with the paper's algorithm:

    When the BluePrint receives an event X which is targeted at an OID Y
    ... The run-time engine starts by finding the target OID Y in the
    meta-database, and the corresponding view and run-time rules in the
    BluePrint.  [1] Any run-time rules with assign actions are then
    executed and [2] all continuous assignments of the OID are
    reevaluated.  [3] The next step consists in invoking the scripts
    which are listed in the exec run-time rules.  [4] Finally, the
    run-time rules which post new events are executed.  Having executed
    all three types of run-time rules, [5] the run-time engine can
    proceed in propagating the event X as well as any new event which was
    posted by a post-type run-time rule.

Design decisions documented in DESIGN.md:

* Within one wave an OID processes a given event *name* at most once
  (cycle protection; guarantees termination on arbitrary link graphs).
* A ``post EVENT dir`` action (no ``to``) propagates from the current OID
  without re-processing it; ``post EVENT dir to VIEW`` delivers to the
  nearest linked OIDs of that view (fallback: the latest version of the
  same block in that view).
* Exec failures are recorded, never allowed to abort the wave.
"""

from __future__ import annotations

import shlex
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.blueprint import Blueprint
from repro.core.events import EventMessage, EventQueue
from repro.core.expressions import Value, interpolate
from repro.core.lang.ast import ExecAction, PostAction
from repro.metadb.database import MetaDatabase
from repro.metadb.links import Direction
from repro.metadb.objects import MetaObject
from repro.metadb.oid import OID


class EngineError(RuntimeError):
    """Raised in strict mode for unknown targets or runaway waves."""


@dataclass
class ExecRequest:
    """One wrapper-program invocation requested by an exec rule."""

    script: str
    args: list[str]
    oid: OID
    event: EventMessage

    def command_line(self) -> str:
        """The request as a copy-pasteable shell line.

        Arguments are escaped with :func:`shlex.quote`, so embedded
        quotes, backslashes and whitespace survive a real shell.
        """
        return " ".join(shlex.quote(token) for token in [self.script, *self.args])


#: Executor signature: run the wrapper, return anything (recorded).
Executor = Callable[[ExecRequest], object]
#: Notifier signature: deliver a message to users.
Notifier = Callable[[str], None]


@dataclass
class EngineMetrics:
    """Counters the analysis layer and benchmarks read."""

    events_posted: int = 0
    waves: int = 0
    deliveries: int = 0
    propagation_hops: int = 0
    rules_fired: int = 0
    assigns: int = 0
    lets_evaluated: int = 0
    execs: int = 0
    exec_failures: int = 0
    notifies: int = 0
    posts: int = 0
    unknown_targets: int = 0
    untracked_views: int = 0
    max_wave_deliveries: int = 0
    per_event: dict[str, int] = field(default_factory=dict)

    def count_event(self, name: str) -> None:
        self.per_event[name] = self.per_event.get(name, 0) + 1

    def snapshot(self) -> dict[str, int]:
        data = {
            key: value
            for key, value in self.__dict__.items()
            if isinstance(value, int)
        }
        return data


@dataclass
class TraceRecord:
    """One trace line: what the engine did and where."""

    seq: int
    kind: str  # deliver / assign / let / exec / notify / post / propagate / skip
    oid: OID | None
    event: str
    detail: str = ""

    def __str__(self) -> str:
        where = self.oid.dotted() if self.oid is not None else "-"
        return f"[{self.seq:>5}] {self.kind:<9} {where:<28} {self.event:<12} {self.detail}"


class EvalEnvironment:
    """Expression environment: event builtins over OID properties.

    Builtins (section 3.2's "built-in environment variable[s]"): ``$oid``
    and ``$OID`` (the target, dotted), ``$block`` / ``$view`` /
    ``$version``, ``$arg``, ``$user``, ``$event`` and ``$date`` (logical
    database clock — deterministic runs beat wall-clock realism here).
    Everything else resolves against the target OID's properties.
    """

    def __init__(
        self, engine: "BlueprintEngine", obj: MetaObject, event: EventMessage
    ) -> None:
        self._obj = obj
        self._builtins: dict[str, Value] = {
            "oid": obj.oid.dotted(),
            "OID": obj.oid.dotted(),
            "block": obj.oid.block,
            "view": obj.oid.view,
            "version": obj.oid.version,
            "arg": event.arg,
            "user": event.user,
            "event": event.name,
            "date": f"t{engine.db.clock}",
        }

    def lookup(self, name: str) -> Value | None:
        if name in self._builtins:
            return self._builtins[name]
        return self._obj.properties.get(name)


@dataclass
class _Delivery:
    """One pending delivery inside a wave."""

    target: OID
    event: EventMessage
    process: bool  # False for propagate-only origins (post without 'to')


def _null_executor(request: ExecRequest) -> object:
    """Default executor: record-only (the engine logs the request)."""
    return None


class BlueprintEngine:
    """Event-driven run-time engine bound to one database and blueprint."""

    def __init__(
        self,
        db: MetaDatabase,
        blueprint: Blueprint,
        *,
        executor: Executor | None = None,
        notifier: Notifier | None = None,
        strict: bool = False,
        auto_link: bool = True,
        max_wave_deliveries: int = 100_000,
        trace_limit: int = 10_000,
    ) -> None:
        self.db = db
        self.blueprint = blueprint
        self.queue = EventQueue()
        self.metrics = EngineMetrics()
        self.executor: Executor = executor or _null_executor
        self.notifier: Notifier | None = notifier
        self.strict = strict
        self.auto_link = auto_link
        self.max_wave_deliveries = max_wave_deliveries
        self.trace: list[TraceRecord] = []
        self.trace_limit = trace_limit
        self.notifications: list[str] = []
        self.exec_log: list[ExecRequest] = []
        self._trace_seq = 0
        self._running = False
        self._attach_hooks()

    @classmethod
    def from_saved(
        cls,
        path,
        blueprint: Blueprint,
        *,
        backend: str | None = None,
        lazy: bool = False,
        blocks: set[str] | None = None,
        views: set[str] | None = None,
        **kwargs,
    ) -> "BlueprintEngine":
        """An engine over a previously persisted meta-database.

        *path* dispatches on suffix to the JSON or SQLite backend unless
        *backend* names one; the loaded database arrives fully indexed,
        so the engine's hot paths (adjacency, stale set) are warm from
        the first event.

        ``lazy=True`` (SQLite only) serves events against a
        demand-faulting database: a wave over one subsystem faults in
        just the shards it touches, and *blocks* / *views* bound the
        faultable window, so the engine's footprint is O(window) even
        over a hundred-thousand-object project.
        """
        from repro.metadb.persistence import load_database

        db, _registry = load_database(
            path, backend=backend, lazy=lazy, blocks=blocks, views=views
        )
        return cls(db, blueprint, **kwargs)

    # ------------------------------------------------------------------
    # hooks / blueprint swapping
    # ------------------------------------------------------------------

    def _attach_hooks(self) -> None:
        # Closures read self.blueprint at call time so swap_blueprint()
        # re-initialises behaviour without re-registering hooks.
        def object_hook(obj: MetaObject) -> None:
            self.blueprint.apply_object_template(self.db, obj, auto_link=self.auto_link)

        def link_hook(link) -> None:
            self.blueprint.apply_link_template(link)

        self.db.on_object_created(object_hook)
        self.db.on_link_created(link_hook)

    def swap_blueprint(self, blueprint: Blueprint) -> None:
        """Re-initialise with a new blueprint (new phase of the project).

        Pending queued events are processed under the new rules, which is
        what re-reading the ASCII file on a live server did.
        """
        self.blueprint = blueprint

    def attach_governor(self, governor) -> None:
        """Bind a :class:`~repro.core.policy.GovernedPolicy` to the engine.

        The governor owns the active policy document and swaps this
        engine's blueprint on every activation/rollback; attaching it
        here lets engine-side consumers (the tool scheduler, wrappers)
        route permission checks through the same audited, fail-closed
        evaluator the network bus uses.
        """
        self.governor = governor

    def check_tool(self, tool: str, inputs: list) -> object:
        """Audited tool-permission check against the attached governor.

        With no governor attached this *grants* — standalone engines
        (tests, notebooks) keep their historical behaviour; fail-closed
        applies once governance is wired in, and then every decision
        lands in the governor's audit log.
        """
        governor = getattr(self, "governor", None)
        if governor is None:
            from repro.core.policy import Decision

            return Decision(granted=True)
        return governor.check_tool(self.db, tool, inputs)

    def on_stale_change(self, listener: Callable[[OID, bool], None]) -> None:
        """Register *listener(oid, is_stale)* on stale-set transitions.

        Convenience passthrough to the database's incremental stale set:
        the project server subscribes here so a wave re-bucketing an
        object pushes a notification the moment the property flips.
        """
        self.db.on_stale_change(listener)

    # ------------------------------------------------------------------
    # posting
    # ------------------------------------------------------------------

    def post(
        self,
        name: str,
        target: OID | str,
        direction: Direction | str = Direction.DOWN,
        arg: str = "",
        user: str = "",
    ) -> EventMessage:
        """Build, stamp and enqueue an event; returns the queued message."""
        target = OID.parse(target) if isinstance(target, str) else target
        direction = (
            Direction.parse(direction) if isinstance(direction, str) else direction
        )
        event = EventMessage(
            name=name, direction=direction, target=target, arg=arg, user=user
        )
        return self.post_message(event)

    def post_message(self, event: EventMessage) -> EventMessage:
        stamped = self.queue.post(event)
        self.metrics.events_posted += 1
        return stamped

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Process one queued event (one wave); False when queue empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        self._wave(event)
        return True

    def run(self, max_events: int | None = None) -> int:
        """Process queued events FIFO until empty (or *max_events*).

        Re-entrant calls (a wrapper invoked by an exec rule checks data in
        and its transport calls ``run`` again) return immediately: the
        outer loop drains the queue, preserving strict FIFO wave order.
        """
        if self._running:
            return 0
        self._running = True
        processed = 0
        try:
            while self.queue:
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        return processed

    # ------------------------------------------------------------------
    # wave machinery
    # ------------------------------------------------------------------

    def _wave(self, root: EventMessage) -> None:
        self.metrics.waves += 1
        self.metrics.count_event(root.name)
        # The visited key includes the direction: a rule may legitimately
        # post the same event name both up and down from one OID (the
        # bidirectional-hierarchy pattern), and each orientation is its
        # own sub-wave.  Keys are finite, so termination still holds.
        visited: set[tuple[OID, str, Direction]] = set()
        pending: deque[_Delivery] = deque(
            [_Delivery(target=root.target, event=root, process=True)]
        )
        wave_deliveries = 0
        while pending:
            delivery = pending.popleft()
            key = (delivery.target, delivery.event.name, delivery.event.direction)
            if key in visited:
                continue
            visited.add(key)
            wave_deliveries += 1
            if wave_deliveries > self.max_wave_deliveries:
                message = (
                    f"wave for {root} exceeded {self.max_wave_deliveries} "
                    f"deliveries; aborting (check PROPAGATE lists for storms)"
                )
                self._record("abort", None, root.name, message)
                if self.strict:
                    raise EngineError(message)
                break
            if delivery.process:
                pending.extend(self._deliver(delivery.target, delivery.event))
            else:
                self._record(
                    "origin", delivery.target, delivery.event.name, "propagate-only"
                )
            # step 5: propagate across qualifying links
            if self.db.find(delivery.target) is None:
                continue
            for link, other in self.db.neighbours(
                delivery.target, delivery.event.direction
            ):
                if not link.allows(delivery.event.name):
                    continue
                self.metrics.propagation_hops += 1
                self._record(
                    "propagate",
                    other,
                    delivery.event.name,
                    f"via link {link.link_id} from {delivery.target.dotted()}",
                )
                pending.append(
                    _Delivery(
                        target=other,
                        event=delivery.event.retargeted(other),
                        process=True,
                    )
                )
        self.metrics.max_wave_deliveries = max(
            self.metrics.max_wave_deliveries, wave_deliveries
        )

    def _deliver(self, target: OID, event: EventMessage) -> list[_Delivery]:
        """Steps 1–4 of the algorithm at one OID; returns new deliveries."""
        self.metrics.deliveries += 1
        obj = self.db.find(target)
        if obj is None:
            self.metrics.unknown_targets += 1
            self._record("skip", target, event.name, "unknown target OID")
            if self.strict:
                raise EngineError(f"event {event} targets unknown OID {target}")
            return []
        view = self.blueprint.effective(obj.view)
        if view is None:
            self.metrics.untracked_views += 1
            self._record("skip", target, event.name, f"view {obj.view!r} untracked")
            return []
        self._record("deliver", target, event.name, event.arg)
        env = EvalEnvironment(self, obj, event)
        # The dispatch table pre-partitions the matching rules' actions into
        # the three phases, so no per-delivery isinstance scan over rules.
        dispatch = view.dispatch(event.name)
        self.metrics.rules_fired += len(dispatch.rules)

        # step 1: assign actions of every matching rule
        for action in dispatch.assigns:
            value = action.value.evaluate(env)
            obj.set(action.name, value)
            self.metrics.assigns += 1
            self._record(
                "assign", target, event.name, f"{action.name} = {value!r}"
            )

        # step 2: re-evaluate all continuous assignments of the OID
        for let_name, expr in obj.continuous.items():
            value = expr.evaluate(env)
            obj.set(let_name, value)
            self.metrics.lets_evaluated += 1
            self._record("let", target, event.name, f"{let_name} = {value!r}")

        # step 3: invoke scripts (exec and notify are both script-phase)
        for action in dispatch.scripts:
            if isinstance(action, ExecAction):
                self._execute(action, obj, event, env)
            else:
                message = interpolate(action.message, env)
                self.notifications.append(message)
                self.metrics.notifies += 1
                self._record("notify", target, event.name, message)
                if self.notifier is not None:
                    self.notifier(message)

        # step 4: post new events
        new_deliveries: list[_Delivery] = []
        for action in dispatch.posts:
            new_deliveries.extend(self._post_action(action, obj, event, env))
        return new_deliveries

    def _execute(
        self,
        action: ExecAction,
        obj: MetaObject,
        event: EventMessage,
        env: EvalEnvironment,
    ) -> None:
        request = ExecRequest(
            script=action.script,
            args=[interpolate(arg, env) for arg in action.args],
            oid=obj.oid,
            event=event,
        )
        self.exec_log.append(request)
        self.metrics.execs += 1
        self._record("exec", obj.oid, event.name, request.command_line())
        try:
            self.executor(request)
        except Exception as exc:  # a failing tool must not kill the wave
            self.metrics.exec_failures += 1
            self._record(
                "execfail", obj.oid, event.name, f"{request.script}: {exc}"
            )

    def _post_action(
        self,
        action: PostAction,
        obj: MetaObject,
        event: EventMessage,
        env: EvalEnvironment,
    ) -> list[_Delivery]:
        arg = interpolate(action.arg, env) if action.arg is not None else ""
        new_event = EventMessage(
            name=action.event,
            direction=action.direction,
            target=obj.oid,
            arg=arg,
            user=event.user,
            seq=event.seq,
        )
        self.metrics.posts += 1
        if action.to_view is None:
            # "directly propagated from the current OID": the origin does
            # not re-process the event, it only fans it out
            self._record("post", obj.oid, action.event, f"{action.direction} (fan-out)")
            return [_Delivery(target=obj.oid, event=new_event, process=False)]
        targets = self._resolve_post_targets(obj.oid, action)
        if not targets:
            self._record(
                "post", obj.oid, action.event, f"to {action.to_view}: no target found"
            )
            return []
        deliveries = []
        for target in targets:
            self._record(
                "post", target, action.event, f"to view {action.to_view}"
            )
            deliveries.append(
                _Delivery(
                    target=target, event=new_event.retargeted(target), process=True
                )
            )
        return deliveries

    def _resolve_post_targets(self, origin: OID, action: PostAction) -> list[OID]:
        """Nearest linked OIDs of ``action.to_view`` in the post direction.

        The breadth-first search crosses links regardless of PROPAGATE —
        this is an explicit, administrator-written post, not passive
        propagation.  Expansion stops at matches (nearest wins).  When the
        graph yields nothing, fall back to the latest version of the same
        block in the named view.
        """
        matches: list[OID] = []
        seen: set[OID] = {origin}
        frontier: deque[OID] = deque([origin])
        while frontier and not matches:
            next_frontier: list[OID] = []
            while frontier:
                here = frontier.popleft()
                for _link, other in self.db.neighbours(here, action.direction):
                    if other in seen:
                        continue
                    seen.add(other)
                    if other.view == action.to_view:
                        matches.append(other)
                    else:
                        next_frontier.append(other)
            frontier.extend(next_frontier)
        if matches:
            return sorted(matches)
        fallback = self.db.latest_version(origin.block, action.to_view)
        if fallback is not None:
            return [fallback.oid]
        return []

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------

    def _record(self, kind: str, oid: OID | None, event: str, detail: str) -> None:
        if self.trace_limit <= 0:
            return
        self._trace_seq += 1
        self.trace.append(TraceRecord(self._trace_seq, kind, oid, event, detail))
        if len(self.trace) > self.trace_limit:
            del self.trace[: len(self.trace) - self.trace_limit]

    def trace_text(self, last: int | None = None) -> str:
        records = self.trace if last is None else self.trace[-last:]
        return "\n".join(str(record) for record in records)
