"""Tool scheduling (paper, section 3.3).

"Tool scheduling is implemented by the wrapper programs. ... The run-time
information specifies the action to be performed upon the reception of a
design event.  This simple, yet powerful, scheme leads naturally to
implementing automatic tool invocation."

The scheduler is the engine's :class:`~repro.core.engine.Executor`: when a
run-time rule says ``exec netlister "$oid"``, the scheduler looks the
script up in its registry, asks the permission policy, and either runs
the wrapper immediately (automatic mode) or parks the invocation for a
designer to trigger (manual mode — the comparison point for experiment
E4).  A depth guard caps run-away automation chains (tool A's check-in
triggering tool B triggering tool A ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.engine import ExecRequest
from repro.core.policy import Decision, PermissionPolicy
from repro.metadb.database import MetaDatabase
from repro.metadb.oid import OID

#: A wrapper callable: receives the exec request, returns a result object.
Wrapper = Callable[[ExecRequest], object]


class SchedulerError(RuntimeError):
    """Raised for unknown scripts in strict mode."""


@dataclass
class ToolRun:
    """The record of one scheduled invocation."""

    script: str
    args: tuple[str, ...]
    oid: OID
    event: str
    granted: bool
    executed: bool
    depth: int
    result: object = None
    refusal_reasons: tuple[str, ...] = ()


@dataclass
class ToolScheduler:
    """Registry + permission gate + automation switch for exec rules."""

    db: MetaDatabase
    policy: PermissionPolicy | None = None
    automatic: bool = True
    strict: bool = False
    max_depth: int = 8
    wrappers: dict[str, Wrapper] = field(default_factory=dict)
    runs: list[ToolRun] = field(default_factory=list)
    pending: list[ExecRequest] = field(default_factory=list)
    _depth: int = 0

    # -- registry -------------------------------------------------------------

    def register(self, script: str, wrapper: Wrapper) -> "ToolScheduler":
        """Bind a script name (as written in exec rules) to a wrapper.

        Registration also covers the common shell spellings: registering
        ``netlister`` answers ``netlister.sh`` and ``./netlister`` too.
        """
        self.wrappers[script] = wrapper
        return self

    def resolve(self, script: str) -> Wrapper | None:
        if script in self.wrappers:
            return self.wrappers[script]
        stem = script.rsplit("/", 1)[-1]
        stem = stem.removesuffix(".sh")
        return self.wrappers.get(stem)

    # -- the engine executor ---------------------------------------------------

    def __call__(self, request: ExecRequest) -> object:
        """Handle one exec rule: gate, then run or park."""
        wrapper = self.resolve(request.script)
        if wrapper is None:
            if self.strict:
                raise SchedulerError(f"no wrapper registered for {request.script!r}")
            self.runs.append(
                ToolRun(
                    script=request.script,
                    args=tuple(request.args),
                    oid=request.oid,
                    event=request.event.name,
                    granted=False,
                    executed=False,
                    depth=self._depth,
                    refusal_reasons=("no wrapper registered",),
                )
            )
            return None
        decision = self._permission(request)
        if not decision.granted:
            self.runs.append(
                ToolRun(
                    script=request.script,
                    args=tuple(request.args),
                    oid=request.oid,
                    event=request.event.name,
                    granted=False,
                    executed=False,
                    depth=self._depth,
                    refusal_reasons=decision.reasons,
                )
            )
            return None
        if not self.automatic:
            self.pending.append(request)
            self.runs.append(
                ToolRun(
                    script=request.script,
                    args=tuple(request.args),
                    oid=request.oid,
                    event=request.event.name,
                    granted=True,
                    executed=False,
                    depth=self._depth,
                )
            )
            return None
        return self._run(wrapper, request)

    def _permission(self, request: ExecRequest) -> Decision:
        if self.policy is None:
            return Decision(granted=True)
        inputs: list[OID | str] = [request.oid]
        for arg in request.args:
            try:
                inputs.append(OID.parse(arg))
            except Exception:
                continue
        return self.policy.check(self.db, request.script, inputs)

    def _run(self, wrapper: Wrapper, request: ExecRequest) -> object:
        if self._depth >= self.max_depth:
            self.runs.append(
                ToolRun(
                    script=request.script,
                    args=tuple(request.args),
                    oid=request.oid,
                    event=request.event.name,
                    granted=True,
                    executed=False,
                    depth=self._depth,
                    refusal_reasons=(f"automation depth limit {self.max_depth}",),
                )
            )
            return None
        self._depth += 1
        try:
            result = wrapper(request)
        finally:
            self._depth -= 1
        self.runs.append(
            ToolRun(
                script=request.script,
                args=tuple(request.args),
                oid=request.oid,
                event=request.event.name,
                granted=True,
                executed=True,
                depth=self._depth,
                result=result,
            )
        )
        return result

    # -- manual mode ------------------------------------------------------------

    def run_pending(self) -> int:
        """Designer trigger: run every parked invocation (manual mode).

        Returns the number of invocations executed.  New exec requests
        arriving while these run are parked again, mirroring a designer
        working through a to-do list.
        """
        batch = self.pending
        self.pending = []
        executed = 0
        for request in batch:
            wrapper = self.resolve(request.script)
            if wrapper is None:
                continue
            self._run(wrapper, request)
            executed += 1
        return executed

    # -- reporting ----------------------------------------------------------------

    def executed_runs(self) -> list[ToolRun]:
        return [run for run in self.runs if run.executed]

    def refused_runs(self) -> list[ToolRun]:
        return [run for run in self.runs if not run.granted]

    def counts(self) -> dict[str, int]:
        return {
            "requested": len(self.runs),
            "executed": sum(1 for run in self.runs if run.executed),
            "refused": sum(1 for run in self.runs if not run.granted),
            "parked": len(self.pending),
        }
