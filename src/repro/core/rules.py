"""Compiled blueprint model: effective views, link templates, rule sets.

The AST of :mod:`repro.core.lang` is a faithful image of the rule file;
this module compiles it into the form the run-time engine consumes:

* the special ``default`` view is merged into every tracked view ("these
  two rules are added to all the views (or rather to the special default
  view which applies to all the views)", section 3.4);
* property declarations become :class:`~repro.metadb.versions.PropertySpec`
  records ready for the inheritance mechanics;
* link declarations become :class:`LinkTemplate` / :class:`UseLinkTemplate`
  records the engine matches against newly created links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.expressions import Expression
from repro.core.lang.ast import (
    AssignAction,
    ExecAction,
    LinkDecl,
    NotifyAction,
    PostAction,
    PropertyDecl,
    UseLinkDecl,
    ViewDecl,
    WhenRule,
)
from repro.metadb.versions import PropertySpec


@dataclass(frozen=True)
class LinkTemplate:
    """A compiled ``link_from`` declaration (source view → this view)."""

    from_view: str
    propagates: frozenset[str]
    link_type: str | None
    move: bool

    @classmethod
    def from_decl(cls, decl: LinkDecl) -> "LinkTemplate":
        return cls(
            from_view=decl.from_view,
            propagates=frozenset(decl.propagates),
            link_type=decl.link_type,
            move=decl.move,
        )

    def to_decl(self) -> LinkDecl:
        return LinkDecl(
            from_view=self.from_view,
            propagates=tuple(sorted(self.propagates)),
            link_type=self.link_type,
            move=self.move,
        )


@dataclass(frozen=True)
class UseLinkTemplate:
    """A compiled ``use_link`` declaration (hierarchy within the view)."""

    propagates: frozenset[str]
    move: bool

    @classmethod
    def from_decl(cls, decl: UseLinkDecl) -> "UseLinkTemplate":
        return cls(propagates=frozenset(decl.propagates), move=decl.move)

    def to_decl(self) -> UseLinkDecl:
        return UseLinkDecl(propagates=tuple(sorted(self.propagates)), move=self.move)


@dataclass(frozen=True)
class RuleDispatch:
    """The pre-partitioned actions one (view, event) delivery executes.

    The engine's per-delivery algorithm runs the matching rules' actions
    in three phases (assign, script, post).  The seed engine re-walked the
    rule list three times per delivery, isinstance-checking every action;
    the dispatch table does that partition once per (view, event) pair and
    the engine just iterates the phase tuples.  Tuple order preserves the
    original (rule, action) order, so execution semantics are unchanged.
    """

    event: str
    rules: tuple[WhenRule, ...]
    assigns: tuple[AssignAction, ...]
    scripts: tuple[ExecAction | NotifyAction, ...]
    posts: tuple[PostAction, ...]

    @classmethod
    def compile(cls, event: str, rules: tuple[WhenRule, ...]) -> "RuleDispatch":
        assigns: list[AssignAction] = []
        scripts: list[ExecAction | NotifyAction] = []
        posts: list[PostAction] = []
        for rule in rules:
            for action in rule.actions:
                if isinstance(action, AssignAction):
                    assigns.append(action)
                elif isinstance(action, (ExecAction, NotifyAction)):
                    scripts.append(action)
                elif isinstance(action, PostAction):
                    posts.append(action)
        return cls(
            event=event,
            rules=rules,
            assigns=tuple(assigns),
            scripts=tuple(scripts),
            posts=tuple(posts),
        )


#: The dispatch for an event no rule handles (shared, immutable).
EMPTY_DISPATCH = RuleDispatch(event="", rules=(), assigns=(), scripts=(), posts=())


@dataclass
class EffectiveView:
    """One tracked view with the default view's declarations merged in.

    Rule execution order within one event delivery is: default-view rules
    first, then the view's own rules, each preserving file order — so the
    paper's ``when ckin do uptodate = true; post outofdate down done``
    (default) runs before a view's specific ``when ckin`` rules.

    ``dispatch`` answers the engine's per-delivery lookup from a compiled
    per-event table; :meth:`compile_dispatch` pre-builds it for every
    declared event (blueprint compilation calls it), and unseen events
    compile-and-cache on first delivery.  The ``rules`` mapping must not
    be mutated after compilation — blueprint transforms (loosening, phase
    switches) rebuild from the AST, which re-compiles.
    """

    name: str
    properties: list[PropertySpec] = field(default_factory=list)
    lets: dict[str, Expression] = field(default_factory=dict)
    link_templates: list[LinkTemplate] = field(default_factory=list)
    use_link: UseLinkTemplate | None = None
    rules: dict[str, list[WhenRule]] = field(default_factory=dict)
    _dispatch: dict[str, RuleDispatch] = field(
        default_factory=dict, repr=False, compare=False
    )

    def rules_for(self, event_name: str) -> list[WhenRule]:
        return self.rules.get(event_name, [])

    def dispatch(self, event_name: str) -> RuleDispatch:
        """The compiled dispatch entry for *event_name* (cached)."""
        entry = self._dispatch.get(event_name)
        if entry is None:
            rules = tuple(self.rules.get(event_name, ()))
            entry = (
                RuleDispatch.compile(event_name, rules) if rules else EMPTY_DISPATCH
            )
            self._dispatch[event_name] = entry
        return entry

    def compile_dispatch(self) -> None:
        """Pre-build the dispatch table for every declared event."""
        for event_name in self.rules:
            self.dispatch(event_name)

    def events_handled(self) -> set[str]:
        return set(self.rules)

    def property_spec(self, name: str) -> PropertySpec | None:
        for spec in self.properties:
            if spec.name == name:
                return spec
        return None

    def link_template_from(self, from_view: str) -> LinkTemplate | None:
        for template in self.link_templates:
            if template.from_view == from_view:
                return template
        return None


def compile_property(decl: PropertyDecl) -> PropertySpec:
    return PropertySpec(name=decl.name, default=decl.default, inherit=decl.inherit)


def merge_views(default: ViewDecl | None, specific: ViewDecl) -> EffectiveView:
    """Merge the ``default`` view's declarations into *specific*.

    Specific declarations win on name clashes (properties and lets);
    rules are concatenated (default first) because both must fire;
    link templates concatenate with specific-first matching priority;
    a specific ``use_link`` shadows the default one.
    """
    effective = EffectiveView(name=specific.name)

    specific_prop_names = {decl.name for decl in specific.properties}
    if default is not None:
        for decl in default.properties:
            if decl.name not in specific_prop_names:
                effective.properties.append(compile_property(decl))
    for decl in specific.properties:
        effective.properties.append(compile_property(decl))

    if default is not None:
        for let in default.lets:
            effective.lets[let.name] = let.value
    for let in specific.lets:
        effective.lets[let.name] = let.value

    for decl in specific.links:
        effective.link_templates.append(LinkTemplate.from_decl(decl))
    if default is not None:
        specific_sources = {template.from_view for template in effective.link_templates}
        for decl in default.links:
            if decl.from_view not in specific_sources:
                effective.link_templates.append(LinkTemplate.from_decl(decl))

    if specific.use_links:
        effective.use_link = UseLinkTemplate.from_decl(specific.use_links[-1])
    elif default is not None and default.use_links:
        effective.use_link = UseLinkTemplate.from_decl(default.use_links[-1])

    if default is not None:
        for rule in default.rules:
            effective.rules.setdefault(rule.event, []).append(rule)
    for rule in specific.rules:
        effective.rules.setdefault(rule.event, []).append(rule)

    return effective


def validate_view(view: ViewDecl) -> list[str]:
    """Structural warnings for one view declaration."""
    warnings: list[str] = []
    seen_props: set[str] = set()
    for decl in view.properties:
        if decl.name in seen_props:
            warnings.append(
                f"view {view.name}: property {decl.name!r} declared twice"
            )
        seen_props.add(decl.name)
    for let in view.lets:
        if let.name in seen_props:
            warnings.append(
                f"view {view.name}: continuous assignment {let.name!r} "
                f"shadows a declared property"
            )
    if len(view.use_links) > 1:
        warnings.append(f"view {view.name}: multiple use_link declarations")
    seen_sources: set[str] = set()
    for decl in view.links:
        if decl.from_view in seen_sources:
            warnings.append(
                f"view {view.name}: duplicate link_from {decl.from_view!r}"
            )
        seen_sources.add(decl.from_view)
        if decl.from_view == view.name:
            warnings.append(
                f"view {view.name}: link_from itself (use use_link for hierarchy)"
            )
    return warnings
