"""Design events and the BluePrint's FIFO event queue.

Section 3.1: "the design activities are converted to events and sent to
the project BluePrint, where they are queued. ... Events are processed
sequentially, first-in first-out."

An event message carries an event name, a propagation direction (up or
down through the links), a target OID and optional arguments — exactly the
fields of the ``postEvent`` wire command::

    postEvent ckin up reg,verilog,4 "logic sim passed"
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace

from repro.metadb.links import Direction
from repro.metadb.oid import OID

#: Well-known event names used throughout the paper's examples.
CKIN = "ckin"
CKOUT = "ckout"
OUTOFDATE = "outofdate"
HDL_SIM = "hdl_sim"
NL_SIM = "nl_sim"
DRC = "drc"
LVS = "lvs"


@dataclass(frozen=True)
class EventMessage:
    """One design event.

    Attributes:
        name: event name (``ckin``, ``outofdate``, ``drc`` ...).
        direction: which way the event travels through links.
        target: the OID the event is aimed at.
        arg: optional free-text argument (``"logic sim passed"``); exposed
            to run-time rules as ``$arg``.
        user: the designer or tool account that produced the event;
            exposed as ``$user``.
        seq: queue sequence number (0 until queued).
    """

    name: str
    direction: Direction
    target: OID
    arg: str = ""
    user: str = ""
    seq: int = 0

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() for ch in self.name):
            raise ValueError(f"bad event name: {self.name!r}")

    def with_seq(self, seq: int) -> "EventMessage":
        return replace(self, seq=seq)

    def retargeted(self, target: OID) -> "EventMessage":
        """The same event aimed at a different OID (used by post-to rules)."""
        return replace(self, target=target)

    def __str__(self) -> str:
        arg = f" {self.arg!r}" if self.arg else ""
        return f"{self.name} {self.direction} {self.target.wire()}{arg}"


class QueueClosedError(RuntimeError):
    """Posting to a queue that has been closed."""


@dataclass
class EventQueue:
    """A strictly first-in first-out event queue with history.

    The queue assigns each posted event a monotonically increasing
    sequence number; processing order equals posting order, which several
    property tests pin down (the paper calls the ordering out explicitly).
    """

    _pending: deque[EventMessage] = field(default_factory=deque)
    _next_seq: int = 1
    history_limit: int = 4096
    history: list[EventMessage] = field(default_factory=list)
    closed: bool = False

    def post(self, event: EventMessage) -> EventMessage:
        """Enqueue *event*; returns the stamped copy."""
        if self.closed:
            raise QueueClosedError("event queue is closed")
        stamped = event.with_seq(self._next_seq)
        self._next_seq += 1
        self._pending.append(stamped)
        self.history.append(stamped)
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) - self.history_limit]
        return stamped

    def pop(self) -> EventMessage:
        """Dequeue the oldest pending event (IndexError when empty)."""
        return self._pending.popleft()

    def discard(self, seqs: set[int]) -> int:
        """Drop pending events whose seq is in *seqs*; returns the count.

        Used to withdraw the unprocessed remainder of a rejected batch —
        leaving it queued would silently execute during the next post.
        """
        before = len(self._pending)
        self._pending = deque(
            event for event in self._pending if event.seq not in seqs
        )
        return before - len(self._pending)

    def peek(self) -> EventMessage | None:
        return self._pending[0] if self._pending else None

    def close(self) -> None:
        """Refuse further posts (used at server shutdown)."""
        self.closed = True

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    @property
    def posted_count(self) -> int:
        """Total number of events ever posted."""
        return self._next_seq - 1
