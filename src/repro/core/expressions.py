"""The continuous-assignment expression language.

Section 3.2 of the paper attaches *continuous assignments* to views::

    let state = ($nl_sim_res == good) and ($lvs_res == is_equiv)
                and ($uptodate == true)

"Such an assignment is continuously being reevaluated."  The right-hand
side is a small boolean expression language over property references
(``$name``), bare-word string literals (``good``, ``is_equiv``), quoted
strings, numbers and the operators ``==``, ``!=``, ``<``, ``<=``, ``>``,
``>=``, ``and``, ``or``, ``not`` with parentheses.

The same expressions serve as run-time-rule right-hand sides
(``sim_result = $arg``), wrapper permission predicates (section 3.3) and
ad-hoc state queries.  String literals containing ``$`` are interpolated
against the evaluation environment, which is how the paper's
``"$oid changed by $user"`` values work.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterator, Protocol

from repro.metadb.properties import Value, value_to_text


class ExpressionError(Exception):
    """Raised for malformed expression source text."""


class Environment(Protocol):
    """Anything that can resolve ``$name`` references."""

    def lookup(self, name: str) -> Value | None:  # pragma: no cover - protocol
        ...


class MappingEnvironment:
    """A plain dict-backed environment, handy for tests and policies."""

    def __init__(self, values: dict[str, Value] | None = None) -> None:
        self.values = dict(values or {})

    def lookup(self, name: str) -> Value | None:
        return self.values.get(name)


_VAR_RE = re.compile(r"\$(\w+)")


def interpolate(template: str, env: Environment) -> str:
    """Replace every ``$name`` in *template* with its environment value.

    Unknown names render as the empty string — the paper's shell-script
    heritage — so message templates never crash an event wave.
    """

    def replace(match: re.Match[str]) -> str:
        value = env.lookup(match.group(1))
        if value is None:
            return ""
        return value_to_text(value)

    return _VAR_RE.sub(replace, template)


def truthy(value: Value | None) -> bool:
    """Blueprint-language truthiness.

    Booleans are themselves; ``None`` (unset property) is false; the
    strings ``"true"``/``"false"`` follow their spelling; any other
    non-empty string is true; numbers follow Python truthiness.
    """
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("", "false"):
            return False
        return True
    return bool(value)


#: Cheap pre-filter for numeric-looking strings: raising/catching
#: ValueError on every non-numeric comparison operand costs more than
#: the whole rest of ``_comparable``, and comparisons run once per rule
#: per event on the policy admission path.  Must never reject a string
#: ``float()`` would accept — after a strip, every such string starts
#: with a sign, a (unicode) digit, ``.digit``, ``nan`` or ``inf``.
_NUMERIC_RE = re.compile(r"[+-]?(\d|\.\d|nan|inf)", re.IGNORECASE)


def _comparable(value: Value | None) -> tuple[int, object]:
    """Normalise a value for ordered comparison.

    Numbers (and numeric strings) compare numerically; everything else
    compares as text.  The leading tag keeps mixed comparisons total.
    """
    if isinstance(value, bool):
        return (1, value_to_text(value))
    if isinstance(value, (int, float)):
        return (0, float(value))
    if isinstance(value, str):
        cached = _COMPARABLE_MEMO.get(value)
        if cached is None:
            if _NUMERIC_RE.match(value.strip()):
                try:
                    cached = (0, float(value))
                except ValueError:
                    cached = (1, value)
            else:
                cached = (1, value)
            # property values repeat heavily (state names, "true", OIDs)
            # while arbitrary one-off $arg strings stay bounded by the cap
            if len(_COMPARABLE_MEMO) < 4096:
                _COMPARABLE_MEMO[value] = cached
        return cached
    return (1, "" if value is None else str(value))


#: value -> normalised form, for repeated string operands.  Reads and
#: writes are GIL-atomic dict ops; a racing miss just recomputes.
_COMPARABLE_MEMO: dict[str, tuple[int, object]] = {}


def values_equal(left: Value | None, right: Value | None) -> bool:
    """Equality with the language's text/number coercions.

    ``true == "true"`` and ``4 == "4"`` hold, matching how the untyped
    ASCII rule files spell values.
    """
    if left is None or right is None:
        return left is None and right is None
    return _comparable(left) == _comparable(right)


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class Expression:
    """Base class of expression AST nodes."""

    def evaluate(self, env: Environment) -> Value:
        raise NotImplementedError

    def variables(self) -> set[str]:
        """Names of all ``$`` references (for dependency tracking)."""
        raise NotImplementedError

    def to_source(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_source()

    @staticmethod
    def parse(text: str) -> "Expression":
        """Parse standalone expression source text."""
        return _Parser(list(_tokenize(text)), text).parse_complete()


@dataclass(frozen=True)
class Literal(Expression):
    """A literal value; quoted strings interpolate ``$name`` at eval time."""

    value: Value
    quoted: bool = False

    def evaluate(self, env: Environment) -> Value:
        if self.quoted and isinstance(self.value, str) and "$" in self.value:
            return interpolate(self.value, env)
        return self.value

    def variables(self) -> set[str]:
        if self.quoted and isinstance(self.value, str):
            return set(_VAR_RE.findall(self.value))
        return set()

    def to_source(self) -> str:
        if self.quoted:
            escaped = str(self.value).replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        text = value_to_text(self.value)
        if isinstance(self.value, str) and not _is_bare_word(self.value):
            escaped = text.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return text


@dataclass(frozen=True)
class VarRef(Expression):
    """A ``$name`` property/builtin reference."""

    name: str

    def evaluate(self, env: Environment) -> Value:
        value = env.lookup(self.name)
        return "" if value is None else value

    def variables(self) -> set[str]:
        return {self.name}

    def to_source(self) -> str:
        return f"${self.name}"


_COMPARATORS: dict[str, Callable[[tuple, tuple], bool]] = {
    "==": lambda l, r: l == r,
    "!=": lambda l, r: l != r,
    "<": lambda l, r: l < r,
    "<=": lambda l, r: l <= r,
    ">": lambda l, r: l > r,
    ">=": lambda l, r: l >= r,
}


@dataclass(frozen=True)
class Compare(Expression):
    op: str
    left: Expression
    right: Expression

    def evaluate(self, env: Environment) -> Value:
        left = _comparable(self.left.evaluate(env))
        right = _comparable(self.right.evaluate(env))
        if self.op in ("==", "!="):
            return _COMPARATORS[self.op](left, right)
        if left[0] != right[0]:
            # ordered comparison across number/text is always false rather
            # than an exception: rule files must not crash event waves
            return False
        return _COMPARATORS[self.op](left, right)

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def to_source(self) -> str:
        return f"{_operand(self.left)} {self.op} {_operand(self.right)}"


@dataclass(frozen=True)
class And(Expression):
    items: tuple[Expression, ...]

    def evaluate(self, env: Environment) -> Value:
        return all(truthy(item.evaluate(env)) for item in self.items)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for item in self.items:
            names |= item.variables()
        return names

    def to_source(self) -> str:
        return " and ".join(_maybe_paren(item) for item in self.items)


@dataclass(frozen=True)
class Or(Expression):
    items: tuple[Expression, ...]

    def evaluate(self, env: Environment) -> Value:
        return any(truthy(item.evaluate(env)) for item in self.items)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for item in self.items:
            names |= item.variables()
        return names

    def to_source(self) -> str:
        return " or ".join(_maybe_paren(item) for item in self.items)


@dataclass(frozen=True)
class Not(Expression):
    item: Expression

    def evaluate(self, env: Environment) -> Value:
        return not truthy(self.item.evaluate(env))

    def variables(self) -> set[str]:
        return self.item.variables()

    def to_source(self) -> str:
        return f"not {_maybe_paren(self.item)}"


# ---------------------------------------------------------------------------
# closure compiler
# ---------------------------------------------------------------------------


def compile_expression(expr: Expression) -> Callable[[Environment], Value]:
    """Compile *expr* into a closure tree that skips AST dispatch.

    Hot paths — the policy admission gate evaluates its rule conditions
    once per journaled write — pay a method dispatch plus dataclass
    attribute lookups per AST node under ``Expression.evaluate``.  The
    compiled form resolves operators, literals and child expressions
    once, at compile time, and evaluates to *identical* values (the
    equivalence suite in ``tests/core/test_expressions.py`` keeps the
    two in lockstep).  Unknown node types fall back to the interpreter.
    """
    if type(expr) is Literal:
        value = expr.value
        if expr.quoted and isinstance(value, str) and "$" in value:
            return lambda env: interpolate(value, env)
        return lambda env: value
    if type(expr) is VarRef:
        name = expr.name

        def var_ref(env: Environment) -> Value:
            value = env.lookup(name)
            return "" if value is None else value

        return var_ref
    if type(expr) is Compare:
        left = compile_expression(expr.left)
        right = compile_expression(expr.right)
        if expr.op == "==":
            return lambda env: _comparable(left(env)) == _comparable(right(env))
        if expr.op == "!=":
            return lambda env: _comparable(left(env)) != _comparable(right(env))
        compare = _COMPARATORS[expr.op]

        def ordered(env: Environment) -> Value:
            lhs = _comparable(left(env))
            rhs = _comparable(right(env))
            if lhs[0] != rhs[0]:
                # same rule as the interpreter: ordered comparison across
                # number/text is false rather than an exception
                return False
            return compare(lhs, rhs)

        return ordered
    if type(expr) is And:
        items = tuple(compile_expression(item) for item in expr.items)
        return lambda env: all(truthy(item(env)) for item in items)
    if type(expr) is Or:
        items = tuple(compile_expression(item) for item in expr.items)
        return lambda env: any(truthy(item(env)) for item in items)
    if type(expr) is Not:
        item = compile_expression(expr.item)
        return lambda env: not truthy(item(env))
    return expr.evaluate


_BARE_WORD_RE = re.compile(r"^[A-Za-z_][\w\-.]*$")
#: Words that would lex as operators/keywords rather than literal atoms.
_RESERVED_ATOMS = frozenset({"and", "or", "not"})


def _is_bare_word(text: str) -> bool:
    """True when *text* prints safely as an unquoted atom."""
    return bool(_BARE_WORD_RE.match(text)) and text not in _RESERVED_ATOMS


def _maybe_paren(item: Expression) -> str:
    if isinstance(item, (And, Or, Compare)):
        return f"({item.to_source()})"
    return item.to_source()


def _operand(item: Expression) -> str:
    """Comparison operands: only bare atoms print unparenthesised."""
    if isinstance(item, (Literal, VarRef)):
        return item.to_source()
    return f"({item.to_source()})"


# ---------------------------------------------------------------------------
# standalone tokenizer + parser
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Token:
    kind: str  # IDENT VARREF STRING NUMBER OP LPAREN RPAREN
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op>==|!=|<=|>=|<|>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<varref>\$\w+)
  | (?P<number>-?\d+(\.\d+)?)
  | (?P<string>"(\\.|[^"\\])*")
  | (?P<ident>[A-Za-z_][\w\-.]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ExpressionError(
                f"bad character {text[pos]!r} at offset {pos} in {text!r}"
            )
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "op":
            yield _Token("OP", value, match.start())
        elif kind == "lparen":
            yield _Token("LPAREN", value, match.start())
        elif kind == "rparen":
            yield _Token("RPAREN", value, match.start())
        elif kind == "varref":
            yield _Token("VARREF", value[1:], match.start())
        elif kind == "number":
            yield _Token("NUMBER", value, match.start())
        elif kind == "string":
            yield _Token("STRING", value, match.start())
        elif kind == "ident":
            yield _Token("IDENT", value, match.start())


def unescape_string(lexeme: str) -> str:
    """Strip quotes and process ``\\"`` / ``\\\\`` escapes."""
    body = lexeme[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


class _Parser:
    """Recursive-descent parser for standalone expression text."""

    def __init__(self, tokens: list[_Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.index = 0

    def parse_complete(self) -> Expression:
        expr = self.parse_or()
        if self.index != len(self.tokens):
            tok = self.tokens[self.index]
            raise ExpressionError(
                f"unexpected {tok.text!r} at offset {tok.pos} in {self.source!r}"
            )
        return expr

    # precedence climbing: or < and < not < comparison < atom

    def parse_or(self) -> Expression:
        items = [self.parse_and()]
        while self._peek_ident("or"):
            self.index += 1
            items.append(self.parse_and())
        return items[0] if len(items) == 1 else Or(tuple(items))

    def parse_and(self) -> Expression:
        items = [self.parse_not()]
        while self._peek_ident("and"):
            self.index += 1
            items.append(self.parse_not())
        return items[0] if len(items) == 1 else And(tuple(items))

    def parse_not(self) -> Expression:
        if self._peek_ident("not"):
            self.index += 1
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expression:
        left = self.parse_atom()
        if self.index < len(self.tokens) and self.tokens[self.index].kind == "OP":
            op = self.tokens[self.index].text
            self.index += 1
            right = self.parse_atom()
            return Compare(op, left, right)
        return left

    def parse_atom(self) -> Expression:
        if self.index >= len(self.tokens):
            raise ExpressionError(f"unexpected end of expression in {self.source!r}")
        tok = self.tokens[self.index]
        self.index += 1
        if tok.kind == "LPAREN":
            inner = self.parse_or()
            if (
                self.index >= len(self.tokens)
                or self.tokens[self.index].kind != "RPAREN"
            ):
                raise ExpressionError(f"missing ')' in {self.source!r}")
            self.index += 1
            return inner
        if tok.kind == "VARREF":
            return VarRef(tok.text)
        if tok.kind == "NUMBER":
            number = float(tok.text)
            return Literal(int(number) if number.is_integer() else number)
        if tok.kind == "STRING":
            return Literal(unescape_string(tok.text), quoted=True)
        if tok.kind == "IDENT":
            if tok.text == "true":
                return Literal(True)
            if tok.text == "false":
                return Literal(False)
            return Literal(tok.text)
        raise ExpressionError(
            f"unexpected {tok.text!r} at offset {tok.pos} in {self.source!r}"
        )

    def _peek_ident(self, word: str) -> bool:
        return (
            self.index < len(self.tokens)
            and self.tokens[self.index].kind == "IDENT"
            and self.tokens[self.index].text == word
        )
