"""Event journal and deterministic replay.

DAMOCLES is a tracking system; the journal makes the tracking itself
auditable.  Related work the paper cites ([Cas90], "Design Management
Based on Design Traces") manages designs from recorded traces — this
module brings that idea to the BluePrint: every *external* input to the
engine (design events, object and link creations) is appended to a
journal, and :func:`replay` reconstructs the exact database state by
feeding the journal to a fresh engine under the same blueprint.

Uses:

* audit — "who invalidated the layout and when";
* disaster recovery — rebuild the meta-database from the journal;
* what-if — replay the same history under a different (e.g. loosened)
  blueprint and compare outcomes (benchmark E7 does exactly this).

Only *inputs* are journaled, never derived effects: rule-driven property
writes, propagation and posts are recomputed at replay, which is the
determinism property ``tests/core/test_journal.py`` pins down.

:func:`replay_governed` extends plain replay to *governed* journals (the
server WAL with policy-v2 entries): policy lifecycle commands and deny
tombstones replay alongside the data, so a twin process reconstructs the
exact allow/deny decision log as well as the database state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.core.blueprint import Blueprint
from repro.core.engine import BlueprintEngine
from repro.core.events import EventMessage
from repro.metadb.database import MetaDatabase
from repro.metadb.links import Direction, Link, LinkClass
from repro.metadb.oid import OID


class JournalError(ValueError):
    """Malformed journal content."""


def event_payload(event: EventMessage) -> dict:
    """The JSON payload for one event (shared journal/WAL wire shape)."""
    return {
        "name": event.name,
        "direction": event.direction.value,
        "target": event.target.wire(),
        "arg": event.arg,
        "user": event.user,
    }


def payload_event(payload: dict) -> EventMessage:
    """Rebuild an :class:`EventMessage` from :func:`event_payload` data."""
    return EventMessage(
        name=payload["name"],
        direction=Direction(payload["direction"]),
        target=OID.parse(payload["target"]),
        arg=payload.get("arg", ""),
        user=payload.get("user", ""),
    )


@dataclass(frozen=True)
class JournalEntry:
    """One recorded external input.

    ``kind`` is one of ``object`` (an OID was created), ``link`` (a link
    was created by an activity), or ``event`` (a design event arrived).
    ``payload`` is the kind-specific data, already plain (JSON-ready).
    """

    seq: int
    kind: str
    payload: dict

    def to_json(self) -> str:
        return json.dumps(
            {"seq": self.seq, "kind": self.kind, **self.payload},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "JournalEntry":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError(f"corrupt journal line: {exc}") from exc
        if "kind" not in data or "seq" not in data:
            raise JournalError(f"journal line missing kind/seq: {line!r}")
        seq = data.pop("seq")
        kind = data.pop("kind")
        return cls(seq=seq, kind=kind, payload=data)


@dataclass
class Journal:
    """An append-only record of external inputs to one project."""

    entries: list[JournalEntry] = field(default_factory=list)
    _next_seq: int = 1

    def _append(self, kind: str, payload: dict) -> JournalEntry:
        entry = JournalEntry(seq=self._next_seq, kind=kind, payload=payload)
        self._next_seq += 1
        self.entries.append(entry)
        return entry

    # -- recording ------------------------------------------------------------

    def record_object(self, oid: OID, properties: dict | None = None) -> None:
        self._append(
            "object",
            {"oid": oid.wire(), "properties": dict(properties or {})},
        )

    def record_link(self, link: Link) -> None:
        self._append(
            "link",
            {
                "source": link.source.wire(),
                "dest": link.dest.wire(),
                "class": link.link_class.value,
            },
        )

    def record_event(self, event: EventMessage) -> None:
        self._append("event", event_payload(event))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[JournalEntry]:
        return iter(self.entries)

    # -- persistence ------------------------------------------------------------

    def save(self, path: Path | str) -> Path:
        """Write the journal as JSON lines."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            "".join(entry.to_json() + "\n" for entry in self.entries)
        )
        return path

    @classmethod
    def load(cls, path: Path | str) -> "Journal":
        path = Path(path)
        if not path.exists():
            raise JournalError(f"no journal at {path}")
        journal = cls()
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            entry = JournalEntry.from_json(line)
            journal.entries.append(entry)
            journal._next_seq = max(journal._next_seq, entry.seq + 1)
        return journal


def attach_journal(engine: BlueprintEngine, journal: Journal) -> Journal:
    """Record every external input of *engine* into *journal*.

    Object/link creations are captured through database hooks; events are
    captured by wrapping ``post_message``.  Creations made by blueprint
    templates (auto-links) are *not* excluded at the hook level — they
    are re-derived at replay, so the recorder skips links whose creation
    happened while a template application is plausible.  In practice the
    unambiguous rule is: auto-created links are exactly those added with
    identical endpoints by replay's own hooks, so recording them too is
    harmless (replay skips duplicates).
    """

    def object_hook(obj) -> None:
        journal.record_object(obj.oid, obj.properties.as_dict())

    def link_hook(link: Link) -> None:
        journal.record_link(link)

    engine.db.on_object_created(object_hook)
    engine.db.on_link_created(link_hook)

    original_post = engine.post_message

    def recording_post(event: EventMessage) -> EventMessage:
        journal.record_event(event)
        return original_post(event)

    engine.post_message = recording_post  # type: ignore[method-assign]
    return journal


def replay(
    journal: Journal,
    blueprint: Blueprint,
    *,
    db_name: str = "replayed",
) -> tuple[MetaDatabase, BlueprintEngine]:
    """Reconstruct a project by feeding *journal* to a fresh engine.

    Returns the rebuilt database and its engine.  Because the journal
    holds every external input in order — and the engine is
    deterministic — the rebuilt database matches the original's state
    exactly (modulo a different blueprint, which is the what-if use).
    """
    db = MetaDatabase(name=db_name)
    engine = BlueprintEngine(db, blueprint)
    for entry in journal:
        if entry.kind == "object":
            oid = OID.parse(entry.payload["oid"])
            if db.find(oid) is None:
                db.create_object(oid, entry.payload.get("properties") or None)
        elif entry.kind == "link":
            source = OID.parse(entry.payload["source"])
            dest = OID.parse(entry.payload["dest"])
            link_class = LinkClass(entry.payload["class"])
            exists = any(
                link.dest == dest and link.link_class is link_class
                for link in db.outgoing(source)
            )
            if not exists and source in db and dest in db:
                db.add_link(source, dest, link_class)
        elif entry.kind == "event":
            engine.post(
                entry.payload["name"],
                OID.parse(entry.payload["target"]),
                Direction(entry.payload["direction"]),
                arg=entry.payload.get("arg", ""),
                user=entry.payload.get("user", ""),
            )
            engine.run()
        else:
            raise JournalError(f"unknown journal entry kind {entry.kind!r}")
    engine.run()
    return db, engine


def replay_governed(
    entries,
    blueprint: Blueprint,
    *,
    db: MetaDatabase | None = None,
    db_name: str = "replayed-governed",
):
    """Replay a *governed* journal: data, policy lifecycle, and audit.

    Takes WAL-style :class:`JournalEntry` objects (kinds ``object`` /
    ``link`` / ``event`` / ``batch`` / ``policy`` / ``audit``) and
    reconstructs database state *and* governance state in one pass,
    mirroring the network bus's apply semantics exactly:

    * ``policy`` entries run through ``apply_lifecycle`` — refused ones
      (race losers) audit a deny, exactly as they did live;
    * ``audit`` entries are deny tombstones written by the live server;
      they are pre-scanned, never re-appended.  An event whose seq
      carries a tombstone is denied with the recorded reason even if
      re-evaluation would allow it (that is how a live ``policy_fault``
      deny — inherently non-deterministic — replays faithfully);
    * everything else re-evaluates against the replayed policy, which is
      deterministic, so rule-based denials re-derive bit-identically.

    Returns ``(db, engine, policy)`` — ``policy.audit_tail()`` is the
    reconstructed decision log.
    """
    from repro.core.policy import ALLOW, DENY, GovernedPolicy, PolicyError

    entries = list(entries)
    tombstones: dict[int, list[tuple[int, str]]] = {}
    for entry in entries:
        if entry.kind == "audit":
            ref = int(entry.payload["ref"])
            tombstones[ref] = [
                (int(index), str(reason))
                for index, reason in entry.payload.get("denied", [])
            ]
    if db is None:
        db = MetaDatabase(name=db_name)
    engine = BlueprintEngine(db, blueprint)
    policy = GovernedPolicy(engine)

    def decide(event: EventMessage, forced: dict[int, str], index: int):
        if index in forced:
            return DENY, forced[index]
        return policy.evaluate(db, event)

    for entry in entries:
        if entry.kind == "object":
            oid = OID.parse(entry.payload["oid"])
            if db.find(oid) is None:
                db.create_object(oid, entry.payload.get("properties") or None)
        elif entry.kind == "link":
            source = OID.parse(entry.payload["source"])
            dest = OID.parse(entry.payload["dest"])
            link_class = LinkClass(entry.payload["class"])
            exists = any(
                link.dest == dest and link.link_class is link_class
                for link in db.outgoing(source)
            )
            if not exists and source in db and dest in db:
                db.add_link(source, dest, link_class)
        elif entry.kind in ("event", "batch"):
            if entry.kind == "event":
                events = [payload_event(entry.payload)]
            else:
                events = [
                    payload_event(item) for item in entry.payload["events"]
                ]
            forced = dict(tombstones.get(entry.seq, ()))
            verdicts = [
                decide(event, forced, index)
                for index, event in enumerate(events)
            ]
            denies = [
                (index, reason)
                for index, (verdict, reason) in enumerate(verdicts)
                if verdict == DENY
            ]
            if denies:
                for index, reason in denies:
                    policy.audit_event(events[index], DENY, reason)
                continue  # live semantics: any deny rejects the whole entry
            for event in events:
                policy.audit_event(event, ALLOW, "")
            for event in events:
                engine.post(
                    event.name,
                    event.target,
                    event.direction,
                    arg=event.arg,
                    user=event.user,
                )
            engine.run()
        elif entry.kind == "policy":
            try:
                policy.apply_lifecycle(
                    entry.payload["action"], entry.payload.get("spec", {})
                )
            except PolicyError:
                pass  # audited deny; the live server answered ERR
        elif entry.kind == "audit":
            continue  # consumed in the pre-scan
        else:
            raise JournalError(f"unknown journal entry kind {entry.kind!r}")
    engine.run()
    return db, engine, policy


def state_fingerprint(db: MetaDatabase) -> dict[str, dict]:
    """A comparable snapshot: every OID's properties, plus link topology.

    Replay tests compare fingerprints of original and rebuilt databases.
    """
    objects = {
        obj.oid.wire(): obj.properties.as_dict()
        for obj in db.objects()
    }
    links = sorted(
        (link.source.wire(), link.dest.wire(), link.link_class.value)
        for link in db.links()
    )
    return {"objects": objects, "links": {"topology": links}}
