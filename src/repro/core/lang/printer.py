"""Pretty-printer for BluePrint ASTs.

``print_blueprint(parse_blueprint(text))`` produces a canonical rendering
that re-parses to an equal AST — the round-trip property the language
tests pin down.  Project administrators use it to dump the effective
blueprint after programmatic edits (e.g. loosening).
"""

from __future__ import annotations

from repro.core.lang.ast import BlueprintDecl, ViewDecl

INDENT = "  "


def print_view(view: ViewDecl, indent: str = INDENT) -> str:
    lines: list[str] = [f"view {view.name}"]
    for prop in view.properties:
        lines.append(indent + prop.to_source())
    for let in view.lets:
        lines.append(indent + let.to_source())
    for use_link in view.use_links:
        lines.append(indent + use_link.to_source())
    for link in view.links:
        lines.append(indent + link.to_source())
    for rule in view.rules:
        lines.append(indent + rule.to_source())
    lines.append("endview")
    return "\n".join(lines)


def print_blueprint(blueprint: BlueprintDecl) -> str:
    """Render *blueprint* as canonical rule-file text."""
    lines: list[str] = [f"blueprint {blueprint.name}"]
    for view in blueprint.views:
        lines.append("")
        lines.append(print_view(view))
    lines.append("")
    lines.append("endblueprint")
    return "\n".join(lines) + "\n"
