"""Lexer for the BluePrint rule language.

Whitespace (including newlines) is insignificant: rules are delimited by
the ``done`` keyword and views by ``endview``, so multi-line rules — which
the paper's own listing line-wraps freely — lex naturally.  ``#`` starts a
comment running to end of line, as in the paper's annotated listing.
"""

from __future__ import annotations

from repro.core.lang.tokens import BlueprintSyntaxError, Token, TokenKind

_PUNCT = {
    "=": TokenKind.EQUALS,
    ";": TokenKind.SEMICOLON,
    ",": TokenKind.COMMA,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
}

_COMPARE_TWO = ("==", "!=", "<=", ">=")
_COMPARE_ONE = ("<", ">")


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-."


def tokenize(source: str) -> list[Token]:
    """Tokenize blueprint *source*; always ends with an EOF token."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        ch = source[index]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == "#":
            while index < length and source[index] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        two = source[index : index + 2]
        if two == "==" or two in _COMPARE_TWO:
            tokens.append(Token(TokenKind.COMPARE, two, start_line, start_column))
            advance(2)
            continue
        if ch in _COMPARE_ONE:
            tokens.append(Token(TokenKind.COMPARE, ch, start_line, start_column))
            advance(1)
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, start_line, start_column))
            advance(1)
            continue
        if ch == "$":
            advance(1)
            name_start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                advance(1)
            name = source[name_start:index]
            if not name:
                raise BlueprintSyntaxError(
                    "expected a name after '$'", start_line, start_column
                )
            tokens.append(Token(TokenKind.VARREF, name, start_line, start_column))
            continue
        if ch == '"':
            advance(1)
            body_start = index
            body: list[str] = []
            while index < length and source[index] != '"':
                if source[index] == "\\" and index + 1 < length:
                    nxt = source[index + 1]
                    if nxt in ('"', "\\"):
                        body.append(nxt)
                        advance(2)
                        continue
                body.append(source[index])
                advance(1)
            if index >= length:
                raise BlueprintSyntaxError(
                    f"unterminated string starting at offset {body_start - 1}",
                    start_line,
                    start_column,
                )
            advance(1)  # closing quote
            tokens.append(
                Token(TokenKind.STRING, "".join(body), start_line, start_column)
            )
            continue
        if ch.isdigit() or (
            ch == "-" and index + 1 < length and source[index + 1].isdigit()
        ):
            number_start = index
            advance(1)
            while index < length and (source[index].isdigit() or source[index] == "."):
                advance(1)
            tokens.append(
                Token(
                    TokenKind.NUMBER,
                    source[number_start:index],
                    start_line,
                    start_column,
                )
            )
            continue
        if _is_ident_start(ch):
            ident_start = index
            advance(1)
            while index < length and _is_ident_char(source[index]):
                advance(1)
            tokens.append(
                Token(
                    TokenKind.IDENT,
                    source[ident_start:index],
                    start_line,
                    start_column,
                )
            )
            continue
        raise BlueprintSyntaxError(f"bad character {ch!r}", start_line, start_column)

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
