"""The BluePrint ASCII rule language: lexer, AST, parser, printer."""

from repro.core.lang.ast import (
    Action,
    AssignAction,
    BlueprintDecl,
    DEFAULT_VIEW,
    ExecAction,
    LetDecl,
    LinkDecl,
    NotifyAction,
    PostAction,
    PropertyDecl,
    UseLinkDecl,
    ViewDecl,
    WhenRule,
)
from repro.core.lang.lexer import tokenize
from repro.core.lang.parser import parse_blueprint
from repro.core.lang.printer import print_blueprint, print_view
from repro.core.lang.tokens import BlueprintSyntaxError, Token, TokenKind

__all__ = [
    "Action",
    "AssignAction",
    "BlueprintDecl",
    "DEFAULT_VIEW",
    "ExecAction",
    "LetDecl",
    "LinkDecl",
    "NotifyAction",
    "PostAction",
    "PropertyDecl",
    "UseLinkDecl",
    "ViewDecl",
    "WhenRule",
    "tokenize",
    "parse_blueprint",
    "print_blueprint",
    "print_view",
    "BlueprintSyntaxError",
    "Token",
    "TokenKind",
]
