"""Recursive-descent parser for the BluePrint rule language.

Accepts the paper's complete ``EDTC_example`` listing verbatim, including
its quirks:

* an ``endview`` may be omitted before a following ``view`` keyword or
  ``endblueprint`` (the paper's listing drops one after the ``schematic``
  view);
* the ``move`` keyword may appear either right after the view name
  (section 3.4 style) or at the end of the declaration (Figure 3 style,
  where it is even upper-case);
* a bare list of ``view`` blocks without the ``blueprint``/
  ``endblueprint`` wrapper parses as an anonymous blueprint (the style of
  Figures 2 and 3).
"""

from __future__ import annotations

from repro.core import expressions as ex
from repro.core.lang.ast import (
    Action,
    AssignAction,
    BlueprintDecl,
    ExecAction,
    LetDecl,
    LinkDecl,
    NotifyAction,
    PostAction,
    PropertyDecl,
    UseLinkDecl,
    ViewDecl,
    WhenRule,
)
from repro.core.lang.lexer import tokenize
from repro.core.lang.tokens import BlueprintSyntaxError, Token, TokenKind


def parse_blueprint(source: str) -> BlueprintDecl:
    """Parse blueprint *source* text into an AST."""
    return _Parser(tokenize(source)).parse_blueprint()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def fail(self, message: str) -> BlueprintSyntaxError:
        token = self.current
        return BlueprintSyntaxError(
            f"{message}, got {token!s}", token.line, token.column
        )

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self.fail(f"expected '{word}'")
        return self.advance()

    def expect_ident(self, what: str, allow_keywords: bool = False) -> str:
        token = self.current
        if token.kind is not TokenKind.IDENT:
            raise self.fail(f"expected {what}")
        if not allow_keywords and token.keyword is not None:
            raise self.fail(f"expected {what}, not the keyword '{token.text}'")
        self.advance()
        return token.text

    def at_keyword(self, *words: str) -> bool:
        return self.current.is_keyword(*words)

    # -- grammar -------------------------------------------------------------

    def parse_blueprint(self) -> BlueprintDecl:
        if self.at_keyword("blueprint"):
            self.advance()
            name = self.expect_ident("a blueprint name")
            wrapped = True
        else:
            name = "anonymous"
            wrapped = False
        views: list[ViewDecl] = []
        seen: set[str] = set()
        while self.at_keyword("view"):
            view = self.parse_view()
            if view.name in seen:
                raise BlueprintSyntaxError(
                    f"duplicate view '{view.name}'",
                    self.current.line,
                    self.current.column,
                )
            seen.add(view.name)
            views.append(view)
        if wrapped:
            self.expect_keyword("endblueprint")
        if self.current.kind is not TokenKind.EOF:
            raise self.fail("expected 'view' or end of file")
        return BlueprintDecl(name=name, views=views)

    def parse_view(self) -> ViewDecl:
        self.expect_keyword("view")
        if self.at_keyword("default"):
            self.advance()
            name = "default"
        else:
            name = self.expect_ident("a view name")
        view = ViewDecl(name=name)
        while True:
            if self.at_keyword("endview"):
                self.advance()
                break
            if self.at_keyword("view", "endblueprint") or (
                self.current.kind is TokenKind.EOF
            ):
                break  # tolerate the paper's missing endview
            if self.at_keyword("property"):
                view.properties.append(self.parse_property())
            elif self.at_keyword("let"):
                view.lets.append(self.parse_let())
            elif self.at_keyword("link_from"):
                view.links.append(self.parse_link_from())
            elif self.at_keyword("use_link"):
                view.use_links.append(self.parse_use_link())
            elif self.at_keyword("when"):
                view.rules.append(self.parse_when())
            else:
                raise self.fail(
                    "expected 'property', 'let', 'link_from', 'use_link', "
                    "'when' or 'endview'"
                )
        return view

    def parse_property(self) -> PropertyDecl:
        from repro.metadb.properties import coerce_value
        from repro.metadb.versions import InheritMode

        self.expect_keyword("property")
        name = self.expect_ident("a property name")
        self.expect_keyword("default")
        value_token = self.current
        raw = self.parse_value("a default value")
        if value_token.kind is TokenKind.NUMBER:
            number = float(raw)
            default = int(number) if number.is_integer() else number
        else:
            default = coerce_value(raw)
        inherit = InheritMode.NONE
        if self.at_keyword("copy"):
            self.advance()
            inherit = InheritMode.COPY
        elif self.at_keyword("move"):
            self.advance()
            inherit = InheritMode.MOVE
        return PropertyDecl(name=name, default=default, inherit=inherit)

    def parse_value(self, what: str) -> str:
        """A property default / exec argument: bare word, string or number."""
        token = self.current
        if token.kind is TokenKind.STRING:
            self.advance()
            return token.text
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return token.text
        if token.kind is TokenKind.IDENT:
            # values like 'bad', 'true', 'not_equiv' are bare words; real
            # keywords (copy/move/when/...) cannot be property values
            if token.keyword in ("true", "false") or token.keyword is None:
                self.advance()
                return token.text
        raise self.fail(f"expected {what}")

    def parse_let(self) -> LetDecl:
        self.expect_keyword("let")
        name = self.expect_ident("a name for the continuous assignment")
        if self.current.kind is not TokenKind.EQUALS:
            raise self.fail("expected '=' in let")
        self.advance()
        return LetDecl(name=name, value=self.parse_expression())

    def parse_event_list(self) -> tuple[str, ...]:
        events = [self.expect_ident("an event name")]
        while self.current.kind is TokenKind.COMMA:
            self.advance()
            events.append(self.expect_ident("an event name"))
        return tuple(events)

    def parse_link_from(self) -> LinkDecl:
        self.expect_keyword("link_from")
        from_view = self.expect_ident("a view name after link_from")
        move = False
        if self.at_keyword("move"):
            self.advance()
            move = True
        # A link may propagate nothing at all — a fully loosened phase
        # trims every event — in which case the clause is simply absent.
        events: tuple[str, ...] = ()
        if self.at_keyword("propagates"):
            self.advance()
            events = self.parse_event_list()
        link_type: str | None = None
        if self.at_keyword("type"):
            self.advance()
            link_type = self.expect_ident("a link type")
        if self.at_keyword("move"):  # Figure 3 trailing-MOVE style
            self.advance()
            move = True
        return LinkDecl(
            from_view=from_view, propagates=events, link_type=link_type, move=move
        )

    def parse_use_link(self) -> UseLinkDecl:
        self.expect_keyword("use_link")
        move = False
        if self.at_keyword("move"):
            self.advance()
            move = True
        events: tuple[str, ...] = ()
        if self.at_keyword("propagates"):
            self.advance()
            events = self.parse_event_list()
        if self.at_keyword("move"):
            self.advance()
            move = True
        return UseLinkDecl(propagates=events, move=move)

    def parse_when(self) -> WhenRule:
        self.expect_keyword("when")
        event = self.expect_ident("an event name after when")
        self.expect_keyword("do")
        actions: list[Action] = [self.parse_action()]
        while self.current.kind is TokenKind.SEMICOLON:
            self.advance()
            if self.at_keyword("done"):
                break  # tolerate a trailing semicolon
            actions.append(self.parse_action())
        self.expect_keyword("done")
        return WhenRule(event=event, actions=tuple(actions))

    def parse_action(self) -> Action:
        if self.at_keyword("post"):
            return self.parse_post()
        if self.at_keyword("exec"):
            return self.parse_exec()
        if self.at_keyword("notify"):
            return self.parse_notify()
        name = self.expect_ident("a property name, 'post', 'exec' or 'notify'")
        if self.current.kind is not TokenKind.EQUALS:
            raise self.fail(f"expected '=' after '{name}'")
        self.advance()
        return AssignAction(name=name, value=self.parse_expression())

    def parse_post(self) -> PostAction:
        from repro.metadb.links import Direction

        self.expect_keyword("post")
        event = self.expect_ident("an event name after post")
        direction = Direction.DOWN
        if self.at_keyword("up", "down"):
            direction = Direction.parse(self.advance().text)
        to_view: str | None = None
        if self.at_keyword("to"):
            self.advance()
            to_view = self.expect_ident("a view name after to")
        arg: str | None = None
        if self.current.kind is TokenKind.STRING:
            arg = self.advance().text
        return PostAction(event=event, direction=direction, to_view=to_view, arg=arg)

    def parse_exec(self) -> ExecAction:
        self.expect_keyword("exec")
        token = self.current
        if token.kind is TokenKind.STRING:
            script = self.advance().text
        else:
            script = self.expect_ident("a script name after exec")
        args: list[str] = []
        while True:
            token = self.current
            if token.kind is TokenKind.STRING:
                args.append(self.advance().text)
            elif token.kind is TokenKind.VARREF:
                self.advance()
                args.append(f"${token.text}")
            elif token.kind is TokenKind.IDENT and token.keyword is None:
                args.append(self.advance().text)
            elif token.kind is TokenKind.NUMBER:
                args.append(self.advance().text)
            else:
                break
        return ExecAction(script=script, args=tuple(args))

    def parse_notify(self) -> NotifyAction:
        self.expect_keyword("notify")
        token = self.current
        if token.kind is not TokenKind.STRING:
            raise self.fail("expected a quoted message after notify")
        self.advance()
        return NotifyAction(message=token.text)

    # -- expressions ---------------------------------------------------------
    #
    # The expression grammar mirrors repro.core.expressions but reads the
    # blueprint token stream, producing the same AST node classes so one
    # evaluator serves both standalone and embedded expressions.

    def parse_expression(self) -> ex.Expression:
        return self.parse_or()

    def parse_or(self) -> ex.Expression:
        items = [self.parse_and()]
        while self.at_keyword("or"):
            self.advance()
            items.append(self.parse_and())
        return items[0] if len(items) == 1 else ex.Or(tuple(items))

    def parse_and(self) -> ex.Expression:
        items = [self.parse_not()]
        while self.at_keyword("and"):
            self.advance()
            items.append(self.parse_not())
        return items[0] if len(items) == 1 else ex.And(tuple(items))

    def parse_not(self) -> ex.Expression:
        if self.at_keyword("not"):
            self.advance()
            return ex.Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ex.Expression:
        left = self.parse_atom()
        if self.current.kind is TokenKind.COMPARE:
            op = self.advance().text
            right = self.parse_atom()
            return ex.Compare(op, left, right)
        return left

    def parse_atom(self) -> ex.Expression:
        token = self.current
        if token.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.parse_or()
            if self.current.kind is not TokenKind.RPAREN:
                raise self.fail("expected ')'")
            self.advance()
            return inner
        if token.kind is TokenKind.VARREF:
            self.advance()
            return ex.VarRef(token.text)
        if token.kind is TokenKind.NUMBER:
            self.advance()
            number = float(token.text)
            return ex.Literal(int(number) if number.is_integer() else number)
        if token.kind is TokenKind.STRING:
            self.advance()
            return ex.Literal(token.text, quoted=True)
        if token.kind is TokenKind.IDENT:
            if token.keyword == "true":
                self.advance()
                return ex.Literal(True)
            if token.keyword == "false":
                self.advance()
                return ex.Literal(False)
            if token.keyword is None:
                self.advance()
                return ex.Literal(token.text)
        raise self.fail("expected an expression")
