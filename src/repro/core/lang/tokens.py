"""Tokens for the BluePrint rule language (paper, section 3.2).

The language is the ASCII file "which contains a set of rules which the
BluePrint applies to the meta-database upon reception of each event".
Keywords are matched case-insensitively because the paper itself mixes
spellings (``move`` in section 3.4, ``MOVE`` in Figure 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    VARREF = "varref"
    EQUALS = "="
    SEMICOLON = ";"
    COMMA = ","
    LPAREN = "("
    RPAREN = ")"
    COMPARE = "compare"  # == != < <= > >=
    EOF = "eof"


#: Reserved words of the language (checked case-insensitively).
KEYWORDS = frozenset(
    {
        "blueprint",
        "endblueprint",
        "view",
        "endview",
        "property",
        "default",
        "copy",
        "move",
        "let",
        "when",
        "do",
        "done",
        "post",
        "exec",
        "notify",
        "up",
        "down",
        "to",
        "link_from",
        "use_link",
        "propagates",
        "type",
        "and",
        "or",
        "not",
    }
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def keyword(self) -> str | None:
        """The lowercase keyword this token spells, or None."""
        if self.kind is TokenKind.IDENT and self.text.lower() in KEYWORDS:
            return self.text.lower()
        return None

    def is_keyword(self, *words: str) -> bool:
        return self.keyword in words

    def location(self) -> str:
        return f"line {self.line}, column {self.column}"

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<end of file>"
        return self.text


class BlueprintSyntaxError(Exception):
    """A lexing or parsing failure with source location."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column
