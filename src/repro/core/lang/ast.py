"""Abstract syntax tree of the BluePrint rule language.

Mirrors the constructs of section 3.2:

* **template rules** — ``property``, ``let``, ``link_from``, ``use_link``;
* **run-time rules** — ``when EVENT do ACTION; ... done`` with assign,
  ``post``, ``exec`` and ``notify`` actions.

The AST keeps blueprint-level structure only; compilation into the
runtime model (merged default view, property specs, link templates) is
:mod:`repro.core.blueprint`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.expressions import Expression
from repro.metadb.links import Direction
from repro.metadb.versions import InheritMode

#: The name of the special view whose declarations apply to every view.
DEFAULT_VIEW = "default"


# -- actions -----------------------------------------------------------------


class Action:
    """Base class for run-time rule actions."""


@dataclass(frozen=True)
class AssignAction(Action):
    """``name = expression`` — assign a property of the target OID."""

    name: str
    value: Expression

    def to_source(self) -> str:
        return f"{self.name} = {self.value.to_source()}"


@dataclass(frozen=True)
class PostAction(Action):
    """``post EVENT up|down [to VIEW] ["arg"]``.

    Without ``to`` the event is "directly propagated from the current
    OID"; with ``to`` it is posted to related OIDs of the named view.
    """

    event: str
    direction: Direction
    to_view: str | None = None
    arg: str | None = None

    def to_source(self) -> str:
        parts = ["post", self.event, self.direction.value]
        if self.to_view is not None:
            parts += ["to", self.to_view]
        if self.arg is not None:
            escaped = self.arg.replace("\\", "\\\\").replace('"', '\\"')
            parts.append(f'"{escaped}"')
        return " ".join(parts)


@dataclass(frozen=True)
class ExecAction(Action):
    """``exec SCRIPT [args...]`` — invoke a wrapper program."""

    script: str
    args: tuple[str, ...] = ()

    def to_source(self) -> str:
        rendered = [self.script]
        for arg in self.args:
            escaped = arg.replace("\\", "\\\\").replace('"', '\\"')
            rendered.append(f'"{escaped}"')
        return "exec " + " ".join(rendered)


@dataclass(frozen=True)
class NotifyAction(Action):
    """``notify "message"`` — send a warning/message to users."""

    message: str

    def to_source(self) -> str:
        escaped = self.message.replace("\\", "\\\\").replace('"', '\\"')
        return f'notify "{escaped}"'


# -- declarations ---------------------------------------------------------------


@dataclass(frozen=True)
class PropertyDecl:
    """``property NAME default VALUE [copy|move]`` (Figure 2)."""

    name: str
    default: str | bool | int | float
    inherit: InheritMode = InheritMode.NONE

    def to_source(self) -> str:
        from repro.metadb.properties import value_to_text

        text = f"property {self.name} default {value_to_text(self.default)}"
        if self.inherit is not InheritMode.NONE:
            text += f" {self.inherit.value}"
        return text


@dataclass(frozen=True)
class LetDecl:
    """``let NAME = EXPR`` — a continuous assignment."""

    name: str
    value: Expression

    def to_source(self) -> str:
        return f"let {self.name} = {self.value.to_source()}"


@dataclass(frozen=True)
class LinkDecl:
    """``link_from VIEW [move] propagates EVENTS [type TYPE] [move]``.

    Declared inside the *destination* view: ``link_from NetList`` inside
    view ``GDSII`` describes NetList → GDSII links (Figure 3).
    """

    from_view: str
    propagates: tuple[str, ...]
    link_type: str | None = None
    move: bool = False

    def to_source(self) -> str:
        parts = ["link_from", self.from_view]
        if self.move:
            parts.append("move")
        if self.propagates:
            parts.append("propagates")
            parts.append(", ".join(self.propagates))
        if self.link_type is not None:
            parts += ["type", self.link_type]
        return " ".join(parts)


@dataclass(frozen=True)
class UseLinkDecl:
    """``use_link [move] propagates EVENTS`` — hierarchy within the view."""

    propagates: tuple[str, ...]
    move: bool = False

    def to_source(self) -> str:
        parts = ["use_link"]
        if self.move:
            parts.append("move")
        if self.propagates:
            parts.append("propagates")
            parts.append(", ".join(self.propagates))
        return " ".join(parts)


@dataclass(frozen=True)
class WhenRule:
    """``when EVENT do ACTION; ACTION ... done``."""

    event: str
    actions: tuple[Action, ...]

    def to_source(self) -> str:
        body = "; ".join(
            action.to_source() for action in self.actions  # type: ignore[attr-defined]
        )
        return f"when {self.event} do {body} done"


@dataclass
class ViewDecl:
    """A ``view NAME ... endview`` block."""

    name: str
    properties: list[PropertyDecl] = field(default_factory=list)
    lets: list[LetDecl] = field(default_factory=list)
    links: list[LinkDecl] = field(default_factory=list)
    use_links: list[UseLinkDecl] = field(default_factory=list)
    rules: list[WhenRule] = field(default_factory=list)

    @property
    def is_default(self) -> bool:
        return self.name == DEFAULT_VIEW


@dataclass
class BlueprintDecl:
    """A complete ``blueprint NAME ... endblueprint`` file."""

    name: str
    views: list[ViewDecl] = field(default_factory=list)

    def view(self, name: str) -> ViewDecl | None:
        for view in self.views:
            if view.name == name:
                return view
        return None

    def view_names(self) -> list[str]:
        return [view.name for view in self.views]
