"""Client side of the project-server protocol.

:class:`BlueprintClient` is what wrapper programs embed; ``postEvent`` is
the command-line spelling the paper's shell wrappers call::

    postEvent ckin up reg,verilog,4 "logic sim passed"

Beyond one-shot posts and queries, the client speaks the v2 dialect:
``stale()`` / ``pending()`` / ``status()`` read the server's incremental
state, ``post_batch()`` ships several events as one atomic FIFO window,
and ``subscribe()`` opens a persistent connection that yields ``STALE``
/ ``FRESH`` push notifications as the engine re-buckets objects.
"""

from __future__ import annotations

import os
import select
import socket
import time
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.events import EventMessage
from repro.metadb.links import Direction
from repro.metadb.oid import OID
from repro.network.protocol import (
    ProtocolError,
    format_batch,
    format_post_event,
    parse_notification,
    parse_pending_response,
    parse_query_response,
    parse_stale_response,
    parse_status_response,
)


class ClientError(RuntimeError):
    """A transport failure or an ERR response from the server."""


@dataclass(frozen=True)
class Notification:
    """One push line from a subscribed connection."""

    verb: str  # "STALE" | "FRESH"
    oid: OID

    @property
    def is_stale(self) -> bool:
        return self.verb == "STALE"


class Subscription:
    """A persistent subscribed connection yielding push notifications.

    Iterate it (blocks until the server pushes or closes), or poll with
    :meth:`next` under a timeout.  Use as a context manager so the
    socket is released deterministically::

        with client.subscribe() as sub:
            note = sub.next(timeout=5.0)
    """

    def __init__(self, conn: socket.socket) -> None:
        self._conn = conn
        self._buffer = bytearray()
        self._closed = False

    def _readline(self, timeout: float | None) -> str:
        """Read one newline-terminated line, honouring *timeout*.

        Bytes accumulate in a buffer owned by this object: a timeout
        firing mid-line keeps the partial line for the next call,
        whereas a buffered socket file is left in an undefined state
        after a timeout and silently drops what it already consumed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                raw = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return raw.decode("utf-8", errors="replace")
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not select.select(
                    [self._conn], [], [], remaining
                )[0]:
                    raise ClientError("no notification: timed out")
            try:
                chunk = self._conn.recv(4096)
            except OSError as exc:
                raise ClientError(f"no notification: {exc}") from exc
            if not chunk:
                raise ClientError("subscription closed by server")
            self._buffer.extend(chunk)

    def next(self, timeout: float | None = None) -> Notification:
        """Block until the next notification (ClientError on timeout/EOF)."""
        line = self._readline(timeout).strip()
        try:
            verb, oid = parse_notification(line)
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc
        return Notification(verb, oid)

    def __iter__(self) -> Iterator[Notification]:
        while True:
            try:
                yield self.next(timeout=None)
            except ClientError:
                return

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._conn.close()

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class BlueprintClient:
    """A small line-protocol client.

    By default every call opens a one-shot connection: wrapper scripts
    stay trivial (no connection state to manage) at a negligible cost
    for occasional posts.  High-rate callers (dashboards, batch
    drivers) pass ``persistent=True`` to pin one connection across
    calls — connection setup dominates wire latency under concurrency,
    so this is roughly an order of magnitude more events/sec.  A
    persistent client is not thread-safe; give each thread its own.
    ``subscribe()`` always hands back its own dedicated connection.
    """

    host: str = "127.0.0.1"
    port: int = 7865
    timeout: float = 5.0
    persistent: bool = False

    def __post_init__(self) -> None:
        self._conn: socket.socket | None = None
        self._file = None

    def _connect(self) -> socket.socket:
        try:
            return socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ClientError(
                f"cannot reach project server at {self.host}:{self.port}: {exc}"
            ) from exc

    def close(self) -> None:
        """Drop the pinned connection (no-op for one-shot clients)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def __enter__(self) -> "BlueprintClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _roundtrip(self, line: str) -> str:
        if self.persistent:
            return self._roundtrip_persistent(line)
        with self._connect() as conn:
            try:
                conn.sendall((line + "\n").encode("utf-8"))
                file = conn.makefile("r", encoding="utf-8")
                response = file.readline().strip()
            except OSError as exc:
                raise ClientError(
                    f"project server at {self.host}:{self.port} dropped: {exc}"
                ) from exc
        if not response:
            raise ClientError("empty response from project server")
        return response

    def _roundtrip_persistent(self, line: str) -> str:
        if self._conn is None:
            self._conn = self._connect()
            self._file = self._conn.makefile("r", encoding="utf-8")
        try:
            self._conn.sendall((line + "\n").encode("utf-8"))
            response = self._file.readline().strip()
        except OSError as exc:
            self.close()
            raise ClientError(
                f"project server at {self.host}:{self.port} dropped: {exc}"
            ) from exc
        if not response:
            # server closed mid-conversation; next call reconnects
            self.close()
            raise ClientError("empty response from project server")
        return response

    def _ok_body(self, line: str) -> str:
        """Send *line*; return the body of the OK response or raise."""
        response = self._roundtrip(line)
        if not response.startswith("OK"):
            raise ClientError(response)
        return response[2:].strip()

    @staticmethod
    def _as_event(
        name: str,
        target: OID | str,
        direction: Direction | str = Direction.DOWN,
        arg: str = "",
        user: str = "",
    ) -> EventMessage:
        target = OID.parse(target) if isinstance(target, str) else target
        direction = (
            Direction.parse(direction) if isinstance(direction, str) else direction
        )
        return EventMessage(
            name=name, direction=direction, target=target, arg=arg, user=user
        )

    def post_event(
        self,
        name: str,
        target: OID | str,
        direction: Direction | str = Direction.DOWN,
        arg: str = "",
        user: str = "",
    ) -> int:
        """Post one event; returns the server-assigned sequence number."""
        event = self._as_event(name, target, direction, arg, user)
        detail = self._ok_body(format_post_event(event))
        return int(detail) if detail else 0

    def post_batch(
        self, events: Iterable[EventMessage | tuple]
    ) -> list[int]:
        """Post several events as one atomic FIFO window.

        Each item is an :class:`EventMessage` or an argument tuple for
        :meth:`post_event` (``(name, target[, direction[, arg[, user]]])``).
        The server validates every target before posting anything, so a
        single unknown OID rejects the whole batch.  Returns the assigned
        sequence numbers in order.
        """
        messages = [
            event
            if isinstance(event, EventMessage)
            else self._as_event(*event)
            for event in events
        ]
        detail = self._ok_body(format_batch(messages))
        return [int(token) for token in detail.split()]

    def query(self, oid: OID | str) -> dict[str, str]:
        """Fetch the property state of one OID as text values.

        The wire format shlex-quotes values, so properties holding the
        paper's ``"logic sim passed"``-style strings round-trip intact.
        """
        oid = OID.parse(oid) if isinstance(oid, str) else oid
        body = self._ok_body(f"query {oid.wire()}")
        try:
            return parse_query_response(body)
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def stale(self) -> list[OID]:
        """The server's incremental stale set (sorted), no scan involved."""
        try:
            return parse_stale_response(self._ok_body("stale"))
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def pending(self) -> dict[OID, tuple[str, ...]]:
        """What still blocks the planned state: OID → failing checks."""
        try:
            return parse_pending_response(self._ok_body("pending"))
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def status(self) -> dict[str, int]:
        """Server/engine counters (objects, stale, queue, waves, ...)."""
        try:
            return parse_status_response(self._ok_body("status"))
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def subscribe(self) -> Subscription:
        """Open a persistent connection receiving push notifications.

        The server acknowledges with ``OK subscribed`` and then writes
        ``STALE <oid>`` / ``FRESH <oid>`` lines the moment a wave
        re-buckets an object — no polling.
        """
        conn = self._connect()
        conn.settimeout(None)  # blocking; Subscription handles timeouts
        try:
            conn.sendall(b"subscribe\n")
        except OSError as exc:
            conn.close()
            raise ClientError(f"subscribe failed: {exc}") from exc
        subscription = Subscription(conn)
        try:
            ack = subscription._readline(self.timeout).strip()
        except ClientError:
            subscription.close()
            raise
        if not ack.startswith("OK"):
            subscription.close()
            raise ClientError(ack or "empty response from project server")
        return subscription

    def ping(self) -> bool:
        return self._roundtrip("ping") == "PONG"


def post_event_main(argv: list[str] | None = None) -> int:
    """The ``postEvent`` console command used by wrapper shell scripts.

    Usage: ``postEvent EVENT up|down BLOCK,VIEW,VERSION ["ARG"]``.
    Server location comes from ``$BLUEPRINT_HOST`` / ``$BLUEPRINT_PORT``
    (defaults 127.0.0.1:7865).
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="postEvent",
        description="post a design event to the BluePrint",
        epilog=(
            "The server also answers: query OID | stale | pending | "
            "status | subscribe (push STALE/FRESH lines) | "
            'batch "postEvent ..." ... — see damocles serve.'
        ),
    )
    parser.add_argument("event")
    parser.add_argument("direction", choices=["up", "down"])
    parser.add_argument("oid", help="BLOCK,VIEW,VERSION")
    parser.add_argument("arg", nargs="?", default="")
    parser.add_argument("--user", default=os.environ.get("USER", ""))
    args = parser.parse_args(argv)

    client = BlueprintClient(
        host=os.environ.get("BLUEPRINT_HOST", "127.0.0.1"),
        port=int(os.environ.get("BLUEPRINT_PORT", "7865")),
    )
    try:
        seq = client.post_event(
            args.event, args.oid, args.direction, args.arg, args.user
        )
    except (ClientError, Exception) as exc:
        print(f"postEvent: {exc}")
        return 1
    print(f"posted #{seq}")
    return 0
