"""Client side of the project-server protocol.

:class:`BlueprintClient` is what wrapper programs embed; ``postEvent`` is
the command-line spelling the paper's shell wrappers call::

    postEvent ckin up reg,verilog,4 "logic sim passed"
"""

from __future__ import annotations

import os
import socket
from dataclasses import dataclass

from repro.core.events import EventMessage
from repro.metadb.links import Direction
from repro.metadb.oid import OID
from repro.network.protocol import format_post_event


class ClientError(RuntimeError):
    """A transport failure or an ERR response from the server."""


@dataclass
class BlueprintClient:
    """A small line-protocol client with one connection per call.

    One-shot connections keep wrapper scripts trivial (no connection
    state to manage) at a negligible cost on localhost.
    """

    host: str = "127.0.0.1"
    port: int = 7865
    timeout: float = 5.0

    def _roundtrip(self, line: str) -> str:
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as conn:
                conn.sendall((line + "\n").encode("utf-8"))
                file = conn.makefile("r", encoding="utf-8")
                response = file.readline().strip()
        except OSError as exc:
            raise ClientError(
                f"cannot reach project server at {self.host}:{self.port}: {exc}"
            ) from exc
        if not response:
            raise ClientError("empty response from project server")
        return response

    def post_event(
        self,
        name: str,
        target: OID | str,
        direction: Direction | str = Direction.DOWN,
        arg: str = "",
        user: str = "",
    ) -> int:
        """Post one event; returns the server-assigned sequence number."""
        target = OID.parse(target) if isinstance(target, str) else target
        direction = (
            Direction.parse(direction) if isinstance(direction, str) else direction
        )
        event = EventMessage(
            name=name, direction=direction, target=target, arg=arg, user=user
        )
        response = self._roundtrip(format_post_event(event))
        if response.startswith("OK"):
            detail = response[2:].strip()
            return int(detail) if detail else 0
        raise ClientError(response)

    def query(self, oid: OID | str) -> dict[str, str]:
        """Fetch the property state of one OID as text values."""
        oid = OID.parse(oid) if isinstance(oid, str) else oid
        response = self._roundtrip(f"query {oid.wire()}")
        if response.startswith("ERR"):
            raise ClientError(response)
        body = response[2:].strip()
        properties: dict[str, str] = {}
        for chunk in body.split():
            if "=" in chunk:
                name, _, value = chunk.partition("=")
                properties[name] = value
        return properties

    def ping(self) -> bool:
        return self._roundtrip("ping") == "PONG"


def post_event_main(argv: list[str] | None = None) -> int:
    """The ``postEvent`` console command used by wrapper shell scripts.

    Usage: ``postEvent EVENT up|down BLOCK,VIEW,VERSION ["ARG"]``.
    Server location comes from ``$BLUEPRINT_HOST`` / ``$BLUEPRINT_PORT``
    (defaults 127.0.0.1:7865).
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="postEvent", description="post a design event to the BluePrint"
    )
    parser.add_argument("event")
    parser.add_argument("direction", choices=["up", "down"])
    parser.add_argument("oid", help="BLOCK,VIEW,VERSION")
    parser.add_argument("arg", nargs="?", default="")
    parser.add_argument("--user", default=os.environ.get("USER", ""))
    args = parser.parse_args(argv)

    client = BlueprintClient(
        host=os.environ.get("BLUEPRINT_HOST", "127.0.0.1"),
        port=int(os.environ.get("BLUEPRINT_PORT", "7865")),
    )
    try:
        seq = client.post_event(
            args.event, args.oid, args.direction, args.arg, args.user
        )
    except (ClientError, Exception) as exc:
        print(f"postEvent: {exc}")
        return 1
    print(f"posted #{seq}")
    return 0
