"""Client side of the project-server protocol.

:class:`BlueprintClient` is what wrapper programs embed; ``postEvent`` is
the command-line spelling the paper's shell wrappers call::

    postEvent ckin up reg,verilog,4 "logic sim passed"

Beyond one-shot posts and queries, the client speaks the v2 dialect:
``stale()`` / ``pending()`` / ``status()`` / ``health()`` read the
server's incremental state, ``post_batch()`` ships several events as one
atomic FIFO window, and ``subscribe()`` opens a persistent connection
that yields ``STALE`` / ``FRESH`` push notifications as the engine
re-buckets objects.

Self-healing (the resilience layer that pairs with the server's
write-ahead journal):

* connect and read timeouts are separate knobs, so a hung server is
  distinguishable from a slow one;
* with a :class:`RetryPolicy`, *idempotent* commands (``query`` /
  ``stale`` / ``pending`` / ``status`` / ``health`` / ``ping``) retry
  transport failures with bounded exponential backoff plus jitter;
* ``ERR busy`` (the server's explicit backpressure rejection) is retried
  for **every** command, posts included — a busy rejection guarantees
  the event was not admitted, so resending cannot double-apply it;
* a persistent client whose pinned connection died *between* round
  trips (server restarted) transparently reconnects once and resends —
  the stale-socket rule, applied regardless of idempotency, because the
  previous round trip completed and this request never reached a live
  server;
* a subscription opened with ``auto_resync=True`` survives server
  bounces and slow-subscriber kicks: on EOF it reconnects (with
  backoff), pulls the server's ``stale`` snapshot, and synthesises the
  ``STALE`` / ``FRESH`` notifications that bring its tracked view — and
  therefore any mirror built from it — back in step.

What is *never* retried: a ``postEvent`` / ``batch`` that failed after
reaching a live server (other than ``ERR busy``) — the client cannot
know whether the wave ran, and the journal may have made it durable.
See ARCHITECTURE.md's retry matrix.

Transports: the default ``transport="lines"`` speaks the paper's line
dialect.  ``transport="frames"`` speaks the length-prefixed framed
dialect of :mod:`repro.network.framing` against the async server — the
sync API, error taxonomy, and the entire retry matrix are unchanged
(framed responses carry the same ``OK``/``ERR`` bodies), but the
connection multiplexes: :meth:`BlueprintClient.post_many` keeps a
window of posts in flight so a burst pays one round trip per *window*
instead of one per event, and a framed subscription is never kicked
for being slow — the server coalesces its backlog instead
(:class:`Notification.coalesced` marks catch-up deltas).
"""

from __future__ import annotations

import os
import random
import select
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.core.events import EventMessage
from repro.metadb.links import Direction
from repro.metadb.oid import OID
from repro.network.framing import (
    CREDIT_PAUSE,
    CREDIT_RESUME,
    FrameChannel,
    FramingError,
    command_to_request,
    event_to_payload,
)
from repro.network.protocol import (
    OVERLOAD_LINE,
    ProtocolError,
    format_batch,
    format_policy_propose,
    format_post_event,
    parse_audit_response,
    parse_busy,
    parse_command,
    parse_notification,
    parse_pending_response,
    parse_query_response,
    parse_stale_response,
    parse_status_response,
)


class ClientError(RuntimeError):
    """A transport failure or an ERR response from the server."""


class TransportError(ClientError):
    """The request may or may not have reached the server (socket-level).

    Retryable for idempotent commands; never auto-retried for posts
    except under the stale-pinned-socket rule.
    """


class BusyError(ClientError):
    """The server shed load before admitting the request.

    Always safe to retry — busy rejections happen before journaling and
    queueing, so the event provably did not run.
    """

    def __init__(self, response: str, retry_after: float) -> None:
        super().__init__(response)
        self.retry_after = retry_after


class SubscriptionClosed(ClientError):
    """The push stream ended (server restart or slow-subscriber kick)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    ``attempts`` counts total tries (1 = no retry).  Delay before retry
    *n* (0-based) is ``base_delay * 2**n`` capped at ``max_delay``, then
    spread by ``jitter`` (a fraction: 0.25 means ±25%) so a fleet of
    wrapper scripts bounced by one server restart does not reconnect in
    lockstep.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    retry_busy: bool = True

    def delay(self, attempt: int) -> float:
        base = min(self.max_delay, self.base_delay * (2**attempt))
        if not self.jitter:
            return base
        spread = base * self.jitter
        return max(0.0, base + random.uniform(-spread, spread))


@dataclass(frozen=True)
class Notification:
    """One push line from a subscribed connection.

    ``coalesced`` is True for catch-up deltas: the framed server's
    backpressure replay (latest state per OID, intermediate flaps
    elided) and a subscription's own resync synthetics.  A live
    transition always has ``coalesced=False``.
    """

    verb: str  # "STALE" | "FRESH"
    oid: OID
    coalesced: bool = False

    @property
    def is_stale(self) -> bool:
        return self.verb == "STALE"


class Subscription:
    """A persistent subscribed connection yielding push notifications.

    Iterate it (blocks until the server pushes or closes), or poll with
    :meth:`next` under a timeout.  Use as a context manager so the
    socket is released deterministically::

        with client.subscribe() as sub:
            note = sub.next(timeout=5.0)

    With *resubscribe* / *resync* callables attached (see
    ``BlueprintClient.subscribe(auto_resync=True)``), an EOF triggers
    reconnect-and-reconcile instead of an error: the subscription
    tracks the set of OIDs it has reported stale (``view``), fetches
    the server's stale snapshot after reconnecting, and emits synthetic
    notifications for the difference — so a digital-twin mirror driven
    by this stream converges to the true state even across a gap.
    """

    def __init__(
        self,
        conn: socket.socket,
        *,
        resubscribe: Callable[[], socket.socket] | None = None,
        resync: Callable[[], list[OID]] | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._conn = conn
        self._buffer = bytearray()
        self._closed = False
        self._resubscribe = resubscribe
        self._resync = resync
        self._retry = retry or RetryPolicy(attempts=8)
        self.view: set[OID] = set()
        self._synthetic: deque[Notification] = deque()
        self.resyncs = 0

    def _readline(self, timeout: float | None) -> str:
        """Read one newline-terminated line, honouring *timeout*.

        Bytes accumulate in a buffer owned by this object: a timeout
        firing mid-line keeps the partial line for the next call,
        whereas a buffered socket file is left in an undefined state
        after a timeout and silently drops what it already consumed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                raw = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return raw.decode("utf-8", errors="replace")
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not select.select(
                    [self._conn], [], [], remaining
                )[0]:
                    raise ClientError("no notification: timed out")
            try:
                chunk = self._conn.recv(4096)
            except OSError as exc:
                raise SubscriptionClosed(f"no notification: {exc}") from exc
            if not chunk:
                raise SubscriptionClosed("subscription closed by server")
            self._buffer.extend(chunk)

    def next(self, timeout: float | None = None) -> Notification:
        """Block until the next notification.

        Raises :class:`ClientError` on timeout; :class:`SubscriptionClosed`
        on EOF unless resubscribe-with-resync is attached, in which case
        the gap is healed transparently (synthetic notifications first).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._synthetic:
                return self._track(self._synthetic.popleft())
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                line = self._readline(remaining).strip()
            except SubscriptionClosed:
                if self._resubscribe is None or self._closed:
                    raise
                self._recover()
                continue
            if line == OVERLOAD_LINE:
                # The server's slow-subscriber kick, announced before
                # the close: recoverable exactly like the EOF it
                # precedes (resync heals the dropped notifications).
                if self._resubscribe is None or self._closed:
                    raise SubscriptionClosed(line)
                self._recover()
                continue
            try:
                verb, oid = parse_notification(line)
            except ProtocolError as exc:
                raise ClientError(str(exc)) from exc
            return self._track(Notification(verb, oid))

    def _track(self, note: Notification) -> Notification:
        if note.is_stale:
            self.view.add(note.oid)
        else:
            self.view.discard(note.oid)
        return note

    def _recover(self) -> None:
        """Reconnect (with backoff) and reconcile the tracked view."""
        try:
            self._conn.close()
        except OSError:
            pass
        self._buffer.clear()
        attempt = 0
        while True:
            try:
                self._conn = self._resubscribe()
                break
            except ClientError:
                attempt += 1
                if attempt >= self._retry.attempts:
                    raise SubscriptionClosed(
                        f"resubscribe failed after {attempt} attempts"
                    ) from None
                time.sleep(self._retry.delay(attempt - 1))
        self.resyncs += 1
        if self._resync is None:
            return
        snapshot = set(self._resync())
        # Everything that went stale during the gap (or whose STALE line
        # we lost) first, then everything that went fresh; inside each
        # group, deterministic OID order.
        for oid in sorted(snapshot - self.view, key=OID.sort_key):
            self._synthetic.append(Notification("STALE", oid))
        for oid in sorted(self.view - snapshot, key=OID.sort_key):
            self._synthetic.append(Notification("FRESH", oid))

    def __iter__(self) -> Iterator[Notification]:
        while True:
            try:
                yield self.next(timeout=None)
            except ClientError:
                return

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._conn.close()

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FramedSubscription:
    """The push stream over the framed transport.

    Same surface as :class:`Subscription` (``next(timeout)``,
    iteration, tracked ``view``, optional auto-resync), different
    contract underneath: the framed server never disconnects a slow
    subscriber.  When this client falls behind, the server sends a
    ``PAUSE`` credit frame (visible as :attr:`paused`), collapses the
    backlog to one latest-state delta per OID, and replays them with
    ``coalesced=True`` once the socket drains, ending with ``RESUME``.
    Every stale/fresh transition is therefore eventually observed —
    possibly coalesced — and the tracked view always converges.
    :meth:`pause` / :meth:`resume` send the same credits client-side to
    explicitly gate the stream (pausing around an expensive rebuild,
    say).
    """

    def __init__(
        self,
        channel: FrameChannel,
        *,
        resubscribe: Callable[[], FrameChannel] | None = None,
        resync: Callable[[], list[OID]] | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._channel = channel
        self._closed = False
        self._resubscribe = resubscribe
        self._resync = resync
        self._retry = retry or RetryPolicy(attempts=8)
        self.view: set[OID] = set()
        self._synthetic: deque[Notification] = deque()
        self.resyncs = 0
        #: True between the server's PAUSE and RESUME credits: pushes
        #: arriving now are coalesced replay, not the live stream.
        self.paused = False

    def _read_frame(self, timeout: float | None) -> dict:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            frame = self._channel.recv_buffered()
            if frame is not None:
                return frame
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not select.select(
                    [self._channel.conn], [], [], remaining
                )[0]:
                    raise ClientError("no notification: timed out")
            try:
                chunk = self._channel.conn.recv(65536)
            except OSError as exc:
                raise SubscriptionClosed(f"no notification: {exc}") from exc
            if not chunk:
                raise SubscriptionClosed("subscription closed by server")
            try:
                self._channel.feed(chunk)
            except FramingError as exc:
                raise SubscriptionClosed(f"push stream corrupt: {exc}") from exc

    def next(self, timeout: float | None = None) -> Notification:
        """Block until the next notification (credit frames are
        absorbed into :attr:`paused` rather than surfaced)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._synthetic:
                return self._track(self._synthetic.popleft())
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                payload = self._read_frame(remaining)
            except SubscriptionClosed:
                if self._resubscribe is None or self._closed:
                    raise
                self._recover()
                continue
            credit = payload.get("credit")
            if credit is not None:
                self.paused = credit == CREDIT_PAUSE
                continue
            push = payload.get("push")
            if push is None:
                continue  # stray response frame on a dedicated socket
            try:
                verb, oid = parse_notification(push)
            except ProtocolError as exc:
                raise ClientError(str(exc)) from exc
            return self._track(
                Notification(verb, oid, bool(payload.get("coalesced")))
            )

    def _track(self, note: Notification) -> Notification:
        if note.is_stale:
            self.view.add(note.oid)
        else:
            self.view.discard(note.oid)
        return note

    def pause(self) -> None:
        """Ask the server to coalesce this stream until :meth:`resume`."""
        self._channel.send({"credit": CREDIT_PAUSE})

    def resume(self) -> None:
        """Lift a client-requested pause; the coalesced backlog replays."""
        self._channel.send({"credit": CREDIT_RESUME})

    def _recover(self) -> None:
        """Reconnect (with backoff) and reconcile the tracked view."""
        self._channel.close()
        self.paused = False
        attempt = 0
        while True:
            try:
                self._channel = self._resubscribe()
                break
            except ClientError:
                attempt += 1
                if attempt >= self._retry.attempts:
                    raise SubscriptionClosed(
                        f"resubscribe failed after {attempt} attempts"
                    ) from None
                time.sleep(self._retry.delay(attempt - 1))
        self.resyncs += 1
        if self._resync is None:
            return
        snapshot = set(self._resync())
        for oid in sorted(snapshot - self.view, key=OID.sort_key):
            self._synthetic.append(Notification("STALE", oid, True))
        for oid in sorted(self.view - snapshot, key=OID.sort_key):
            self._synthetic.append(Notification("FRESH", oid, True))

    def __iter__(self) -> Iterator[Notification]:
        while True:
            try:
                yield self.next(timeout=None)
            except ClientError:
                return

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._channel.close()

    def __enter__(self) -> "FramedSubscription":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class BlueprintClient:
    """A small line-protocol client.

    By default every call opens a one-shot connection: wrapper scripts
    stay trivial (no connection state to manage) at a negligible cost
    for occasional posts.  High-rate callers (dashboards, batch
    drivers) pass ``persistent=True`` to pin one connection across
    calls — connection setup dominates wire latency under concurrency,
    so this is roughly an order of magnitude more events/sec.  A
    persistent client is not thread-safe; give each thread its own.
    ``subscribe()`` always hands back its own dedicated connection.

    ``timeout`` is the legacy single knob; ``connect_timeout`` /
    ``read_timeout`` override it separately.  Pass ``retry`` to opt
    into self-healing (see the module docstring for exactly what is
    and is not retried).
    """

    host: str = "127.0.0.1"
    port: int = 7865
    timeout: float = 5.0
    persistent: bool = False
    connect_timeout: float | None = None
    read_timeout: float | None = None
    retry: RetryPolicy | None = None
    #: ``"lines"`` (default, works against both servers) or ``"frames"``
    #: (the async server's multiplexed transport; enables pipelining).
    transport: str = "lines"

    def __post_init__(self) -> None:
        if self.transport not in ("lines", "frames"):
            raise ValueError(f"unknown transport {self.transport!r}")
        self._conn: socket.socket | None = None
        self._file = None
        self._pinned_used = False
        self._channel: FrameChannel | None = None
        self._request_seq = 0

    @property
    def _connect_timeout(self) -> float:
        return self.connect_timeout if self.connect_timeout is not None else self.timeout

    @property
    def _read_timeout(self) -> float:
        return self.read_timeout if self.read_timeout is not None else self.timeout

    def _connect(self) -> socket.socket:
        try:
            conn = socket.create_connection(
                (self.host, self.port), timeout=self._connect_timeout
            )
        except OSError as exc:
            raise TransportError(
                f"cannot reach project server at {self.host}:{self.port}: {exc}"
            ) from exc
        conn.settimeout(self._read_timeout)
        return conn

    def close(self) -> None:
        """Drop the pinned connection (no-op for one-shot clients)."""
        if self._channel is not None:
            self._channel.close()
            self._channel = None
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        self._pinned_used = False

    def __enter__(self) -> "BlueprintClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- transport ------------------------------------------------------------

    def _roundtrip(self, line: str) -> str:
        if self.transport == "frames":
            return self._roundtrip_frames(line)
        if self.persistent:
            return self._roundtrip_persistent(line)
        with self._connect() as conn:
            try:
                conn.sendall((line + "\n").encode("utf-8"))
                file = conn.makefile("r", encoding="utf-8")
                response = file.readline().strip()
            except OSError as exc:
                raise TransportError(
                    f"project server at {self.host}:{self.port} dropped: {exc}"
                ) from exc
        if not response:
            raise TransportError("empty response from project server")
        return response

    def _roundtrip_persistent(self, line: str) -> str:
        """One round trip on the pinned connection.

        A pinned socket that already served a round trip can die
        between calls — typically because the server restarted.  That
        failure mode is detected here (error on a *reused* socket) and
        healed with exactly one reconnect-and-resend, for any command:
        the previous round trip completed, so this request was never
        processed by a live server.  A fresh connection that fails gets
        no such retry — the server is actually unreachable or dropped
        this very request mid-flight.
        """
        for attempt in (0, 1):
            reused = self._conn is not None and self._pinned_used
            if self._conn is None:
                self._conn = self._connect()
                self._file = self._conn.makefile("r", encoding="utf-8")
                self._pinned_used = False
            try:
                self._conn.sendall((line + "\n").encode("utf-8"))
                response = self._file.readline().strip()
                if not response:
                    raise OSError("server closed the connection")
            except OSError as exc:
                self.close()
                if reused and attempt == 0:
                    continue  # stale pinned socket: reconnect once
                raise TransportError(
                    f"project server at {self.host}:{self.port} dropped: {exc}"
                ) from exc
            self._pinned_used = True
            return response
        raise TransportError("unreachable")  # pragma: no cover

    # -- framed transport ------------------------------------------------------

    def _take_request_id(self) -> int:
        self._request_seq += 1
        return self._request_seq

    def _open_channel(self) -> FrameChannel:
        return FrameChannel(self._connect())

    def _exchange(self, channel: FrameChannel, request: dict) -> str:
        """One tagged round trip: send, then wait for the matching id.

        Push/credit frames that arrive interleaved (a subscribed
        connection) are skipped — the dedicated subscription socket is
        the supported way to consume them, but a stray frame must not
        desynchronise the request stream.
        """
        channel.send(request)
        while True:
            payload = channel.recv()
            if "error" in payload:
                # The server found our stream unrecoverable and is
                # closing; not a transport flake, so not retryable.
                raise ClientError(f"server: {payload['error']}")
            if payload.get("id") == request["id"] and "response" in payload:
                response = str(payload["response"])
                if not response:
                    raise OSError("empty response from project server")
                return response

    def _roundtrip_frames(self, line: str) -> str:
        """The line-dialect request, carried over the framed transport.

        The line is parsed back to a :class:`Command` and re-rendered as
        a framed request; the response body is the same ``OK``/``ERR``
        line either transport answers, so everything above this method
        (retry matrix, busy handling, parsers) is transport-blind.
        Persistent clients keep the stale-pinned-socket heal-once rule.
        """
        try:
            request = command_to_request(
                parse_command(line), self._take_request_id()
            )
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc
        if not self.persistent:
            channel = self._open_channel()
            try:
                return self._exchange(channel, request)
            except (OSError, ConnectionError) as exc:
                raise TransportError(
                    f"project server at {self.host}:{self.port} dropped: {exc}"
                ) from exc
            except FramingError as exc:
                raise ClientError(f"framed stream corrupt: {exc}") from exc
            finally:
                channel.close()
        for attempt in (0, 1):
            reused = self._channel is not None and self._pinned_used
            if self._channel is None:
                self._channel = self._open_channel()
                self._pinned_used = False
            try:
                response = self._exchange(self._channel, request)
            except (OSError, ConnectionError) as exc:
                self.close()
                if reused and attempt == 0:
                    continue  # stale pinned channel: reconnect once
                raise TransportError(
                    f"project server at {self.host}:{self.port} dropped: {exc}"
                ) from exc
            except FramingError as exc:
                self.close()
                raise ClientError(f"framed stream corrupt: {exc}") from exc
            self._pinned_used = True
            return response
        raise TransportError("unreachable")  # pragma: no cover

    def _request(self, line: str, *, idempotent: bool) -> str:
        """Round-trip with the retry policy applied.

        Transport failures retry only for idempotent commands; ``ERR
        busy`` retries for everything (explicit non-admission), honouring
        the server's retry-after hint.
        """
        policy = self.retry
        attempts = policy.attempts if policy is not None else 1
        attempt = 0
        while True:
            try:
                response = self._roundtrip(line)
            except TransportError:
                attempt += 1
                if policy is None or not idempotent or attempt >= attempts:
                    raise
                time.sleep(policy.delay(attempt - 1))
                continue
            hint = parse_busy(response)
            if hint is not None:
                attempt += 1
                if (
                    policy is None
                    or not policy.retry_busy
                    or attempt >= attempts
                ):
                    raise BusyError(response, hint)
                time.sleep(max(hint, policy.delay(attempt - 1)))
                continue
            return response

    def _ok_body(self, line: str, *, idempotent: bool = False) -> str:
        """Send *line*; return the body of the OK response or raise."""
        response = self._request(line, idempotent=idempotent)
        if not response.startswith("OK"):
            raise ClientError(response)
        return response[2:].strip()

    # -- commands -------------------------------------------------------------

    @staticmethod
    def _as_event(
        name: str,
        target: OID | str,
        direction: Direction | str = Direction.DOWN,
        arg: str = "",
        user: str = "",
    ) -> EventMessage:
        target = OID.parse(target) if isinstance(target, str) else target
        direction = (
            Direction.parse(direction) if isinstance(direction, str) else direction
        )
        return EventMessage(
            name=name, direction=direction, target=target, arg=arg, user=user
        )

    def post_event(
        self,
        name: str,
        target: OID | str,
        direction: Direction | str = Direction.DOWN,
        arg: str = "",
        user: str = "",
    ) -> int:
        """Post one event; returns the server-assigned sequence number."""
        event = self._as_event(name, target, direction, arg, user)
        detail = self._ok_body(format_post_event(event))
        return int(detail) if detail else 0

    def post_batch(
        self, events: Iterable[EventMessage | tuple]
    ) -> list[int]:
        """Post several events as one atomic FIFO window.

        Each item is an :class:`EventMessage` or an argument tuple for
        :meth:`post_event` (``(name, target[, direction[, arg[, user]]])``).
        The server validates every target before posting anything, so a
        single unknown OID rejects the whole batch.  Returns the assigned
        sequence numbers in order.
        """
        messages = [
            event
            if isinstance(event, EventMessage)
            else self._as_event(*event)
            for event in events
        ]
        detail = self._ok_body(format_batch(messages))
        return [int(token) for token in detail.split()]

    def post_many(
        self,
        events: Iterable[EventMessage | tuple],
        *,
        window: int = 64,
    ) -> list[int]:
        """Post many *independent* events, pipelined.

        Unlike :meth:`post_batch` (one atomic all-or-nothing command),
        each event here is its own ``postEvent`` — but on the framed
        transport up to *window* of them stay in flight at once, so a
        burst pays one round trip per window rather than one per event
        (and, on a journaled server, shares fsync barriers across the
        whole window).  On the lines transport this degrades to a
        sequential loop with identical semantics.

        Returns the assigned sequence numbers in input order.  ``ERR
        busy`` rejections are retried per the policy (they are provably
        un-admitted); the first non-busy ``ERR`` raises
        :class:`ClientError` after the in-flight window drains, with
        every already-acknowledged event applied (their seqs are lost to
        the caller — treat the call as non-atomic).  A transport failure
        mid-window raises :class:`TransportError` without resending:
        sent-but-unacknowledged events may or may not have run.
        """
        messages = [
            event
            if isinstance(event, EventMessage)
            else self._as_event(*event)
            for event in events
        ]
        if not messages:
            return []
        if self.transport != "frames":
            return [
                int(self._ok_body(format_post_event(message)) or 0)
                for message in messages
            ]
        policy = self.retry
        results: list[int | None] = [None] * len(messages)
        todo = list(range(len(messages)))
        busy_attempt = 0
        healed = False
        own_channel: FrameChannel | None = None
        try:
            while todo:
                if self.persistent:
                    reused = self._channel is not None and self._pinned_used
                    if self._channel is None:
                        self._channel = self._open_channel()
                        self._pinned_used = False
                    channel = self._channel
                else:
                    reused = own_channel is not None
                    if own_channel is None:
                        own_channel = self._open_channel()
                    channel = own_channel
                ok: dict[int, int] = {}
                progress = any(result is not None for result in results)
                try:
                    busy, error = self._pipeline_window(
                        channel, messages, todo, window, ok
                    )
                except (OSError, ConnectionError) as exc:
                    self.close()
                    if own_channel is not None:
                        own_channel.close()
                        own_channel = None
                    if (
                        self.persistent
                        and reused
                        and not progress
                        and not ok
                        and not healed
                    ):
                        # Stale pinned channel, nothing from this call
                        # acknowledged: the server restarted between
                        # calls, so resending the lot is safe — once.
                        healed = True
                        continue
                    raise TransportError(
                        f"project server at {self.host}:{self.port} "
                        f"dropped mid-pipeline: {exc}"
                    ) from exc
                except FramingError as exc:
                    self.close()
                    raise ClientError(f"framed stream corrupt: {exc}") from exc
                if self.persistent:
                    self._pinned_used = True
                for index, seq in ok.items():
                    results[index] = seq
                if error is not None:
                    raise ClientError(error[1])
                if not busy:
                    break
                busy_attempt += 1
                hint = max(entry[1] for entry in busy)
                if (
                    policy is None
                    or not policy.retry_busy
                    or busy_attempt >= policy.attempts
                ):
                    raise BusyError(busy[0][2], hint)
                time.sleep(max(hint, policy.delay(busy_attempt - 1)))
                todo = [entry[0] for entry in busy]
        finally:
            if own_channel is not None:
                own_channel.close()
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def _pipeline_window(
        self,
        channel: FrameChannel,
        messages: list[EventMessage],
        todo: list[int],
        window: int,
        ok: dict[int, int],
    ) -> tuple[list[tuple[int, float, str]], tuple[int, str] | None]:
        """One pipelined pass over *todo*, keeping ≤ *window* in flight.

        Fills *ok* (message index → seq) in place so progress survives a
        transport exception; returns the busy rejections as
        ``(index, retry_hint, response)`` and the first hard error as
        ``(index, response)`` — the in-flight window is always drained,
        even after an error, so the channel stays usable.
        """
        inflight: dict[int, int] = {}
        send_iter = iter(todo)
        exhausted = False
        error: tuple[int, str] | None = None
        busy: list[tuple[int, float, str]] = []
        while True:
            while not exhausted and len(inflight) < window:
                index = next(send_iter, None)
                if index is None:
                    exhausted = True
                    break
                request_id = self._take_request_id()
                inflight[request_id] = index
                channel.send(
                    {
                        "id": request_id,
                        "cmd": "post",
                        "event": event_to_payload(messages[index]),
                    }
                )
            if not inflight:
                return busy, error
            payload = channel.recv()
            if "error" in payload:
                raise FramingError(str(payload["error"]))
            request_id = payload.get("id")
            if request_id not in inflight:
                continue  # push/credit or stale frame: not ours
            index = inflight.pop(request_id)
            response = str(payload.get("response", ""))
            hint = parse_busy(response)
            if hint is not None:
                busy.append((index, hint, response))
            elif response.startswith("OK"):
                body = response[2:].strip()
                ok[index] = int(body) if body else 0
            elif error is None:
                error = (index, response)

    def query(self, oid: OID | str) -> dict[str, str]:
        """Fetch the property state of one OID as text values.

        The wire format shlex-quotes values, so properties holding the
        paper's ``"logic sim passed"``-style strings round-trip intact.
        """
        oid = OID.parse(oid) if isinstance(oid, str) else oid
        body = self._ok_body(f"query {oid.wire()}", idempotent=True)
        try:
            return parse_query_response(body)
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def stale(self) -> list[OID]:
        """The server's incremental stale set (sorted), no scan involved."""
        try:
            return parse_stale_response(self._ok_body("stale", idempotent=True))
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def pending(self) -> dict[OID, tuple[str, ...]]:
        """What still blocks the planned state: OID → failing checks."""
        try:
            return parse_pending_response(
                self._ok_body("pending", idempotent=True)
            )
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def status(self) -> dict[str, int]:
        """Server/engine counters (objects, stale, queue, waves, ...)."""
        try:
            return parse_status_response(
                self._ok_body("status", idempotent=True)
            )
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def health(self) -> dict[str, int]:
        """Durability/backpressure gauges: journal lag, queue depths,
        lock waits, busy rejections.  Answered lock-free by the server,
        so it works even when writers are wedged."""
        try:
            return parse_status_response(
                self._ok_body("health", idempotent=True)
            )
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    # -- policy governance ---------------------------------------------------

    def policy_status(self) -> dict[str, str]:
        """The active policy document: version, class, hash, gauges."""
        try:
            return parse_query_response(
                self._ok_body("policy status", idempotent=True)
            )
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def policy_propose(self, change_class: str, op: str, *args: str) -> str:
        """Propose a policy revision (``loosen`` / ``require`` / ``drop``).

        Additive proposals auto-activate; breaking ones park pending
        until :meth:`policy_approve`.  Returns the server's OK body
        (``<version> active`` or ``<version> pending``).  Not idempotent:
        a retried propose can race its own first attempt, so transport
        failures surface as :class:`TransportError` like posts do.
        """
        line = format_policy_propose(change_class, op, tuple(args))
        return self._ok_body(line)

    def policy_approve(self, version: int | str) -> str:
        """Activate the pending breaking proposal (must name its version)."""
        return self._ok_body(f"policy approve {version}")

    def policy_rollback(self) -> str:
        """Restore the previous document's content as a new version."""
        return self._ok_body("policy rollback")

    def audit(self, limit: int | None = None) -> list[dict]:
        """The tail of the policy decision log, oldest first.

        Each record is a payload dict (``seq``, ``kind``, ``subject``,
        ``verdict``, ``reason``, ``version``).
        """
        line = "audit" if limit is None else f"audit {int(limit)}"
        try:
            return parse_audit_response(self._ok_body(line, idempotent=True))
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def _open_subscription(self) -> socket.socket:
        """Connect, send ``subscribe``, consume the ack; returns the socket."""
        conn = self._connect()
        conn.settimeout(None)  # blocking; Subscription handles timeouts
        try:
            conn.sendall(b"subscribe\n")
        except OSError as exc:
            conn.close()
            raise TransportError(f"subscribe failed: {exc}") from exc
        probe = Subscription(conn)
        try:
            ack = probe._readline(self.timeout).strip()
        except ClientError:
            conn.close()
            raise
        if not ack.startswith("OK"):
            conn.close()
            raise ClientError(ack or "empty response from project server")
        return conn

    def _open_framed_subscription(self) -> FrameChannel:
        """Connect over frames, subscribe, consume the tagged ack."""
        conn = self._connect()
        channel = FrameChannel(conn)
        try:
            channel.send({"id": 0, "cmd": "subscribe"})
            while True:
                payload = channel.recv()
                if payload.get("id") == 0:
                    response = str(payload.get("response", ""))
                    if not response.startswith("OK"):
                        raise ClientError(
                            response or "empty response from project server"
                        )
                    break
        except (OSError, ConnectionError) as exc:
            channel.close()
            raise TransportError(f"subscribe failed: {exc}") from exc
        except FramingError as exc:
            channel.close()
            raise ClientError(f"framed stream corrupt: {exc}") from exc
        except ClientError:
            channel.close()
            raise
        conn.settimeout(None)  # blocking; FramedSubscription handles timeouts
        return channel

    def _snapshot_client(self) -> "BlueprintClient":
        """A one-shot twin used for resync snapshots during recovery."""
        return BlueprintClient(
            host=self.host,
            port=self.port,
            timeout=self.timeout,
            connect_timeout=self.connect_timeout,
            read_timeout=self.read_timeout,
            retry=self.retry or RetryPolicy(),
            transport=self.transport,
        )

    def subscribe(
        self, *, auto_resync: bool = False
    ) -> "Subscription | FramedSubscription":
        """Open a persistent connection receiving push notifications.

        The server acknowledges with ``OK subscribed`` and then pushes
        ``STALE <oid>`` / ``FRESH <oid>`` the moment a wave re-buckets
        an object — no polling.  On the frames transport this returns a
        :class:`FramedSubscription`, whose stream is never closed for
        falling behind (the server coalesces instead — see that class).

        With ``auto_resync=True`` the subscription heals itself: on EOF
        (server bounce, slow-subscriber kick) it reconnects with
        backoff, re-subscribes, fetches the ``stale`` snapshot over a
        separate one-shot exchange, and yields synthetic notifications
        reconciling its tracked view — a mirror driven by this stream
        converges even across the gap.
        """
        if self.transport == "frames":
            framed = self._open_framed_subscription()
            if not auto_resync:
                return FramedSubscription(framed)
            return FramedSubscription(
                framed,
                resubscribe=self._open_framed_subscription,
                resync=self._snapshot_client().stale,
                retry=self.retry or RetryPolicy(attempts=8),
            )
        conn = self._open_subscription()
        if not auto_resync:
            return Subscription(conn)
        return Subscription(
            conn,
            resubscribe=self._open_subscription,
            resync=self._snapshot_client().stale,
            retry=self.retry or RetryPolicy(attempts=8),
        )

    def ping(self) -> bool:
        return self._request("ping", idempotent=True) == "PONG"


def post_event_main(argv: list[str] | None = None) -> int:
    """The ``postEvent`` console command used by wrapper shell scripts.

    Usage: ``postEvent EVENT up|down BLOCK,VIEW,VERSION ["ARG"]``.
    Server location comes from ``$BLUEPRINT_HOST`` / ``$BLUEPRINT_PORT``
    (defaults 127.0.0.1:7865); ``$BLUEPRINT_RETRIES`` enables the retry
    policy with that many attempts.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="postEvent",
        description="post a design event to the BluePrint",
        epilog=(
            "The server also answers: query OID | stale | pending | "
            "status | health | subscribe (push STALE/FRESH lines) | "
            'batch "postEvent ..." ... — see damocles serve.'
        ),
    )
    parser.add_argument("event")
    parser.add_argument("direction", choices=["up", "down"])
    parser.add_argument("oid", help="BLOCK,VIEW,VERSION")
    parser.add_argument("arg", nargs="?", default="")
    parser.add_argument("--user", default=os.environ.get("USER", ""))
    args = parser.parse_args(argv)

    retries = int(os.environ.get("BLUEPRINT_RETRIES", "0"))
    client = BlueprintClient(
        host=os.environ.get("BLUEPRINT_HOST", "127.0.0.1"),
        port=int(os.environ.get("BLUEPRINT_PORT", "7865")),
        retry=RetryPolicy(attempts=retries) if retries > 0 else None,
    )
    try:
        seq = client.post_event(
            args.event, args.oid, args.direction, args.arg, args.user
        )
    except (ClientError, Exception) as exc:
        print(f"postEvent: {exc}")
        return 1
    print(f"posted #{seq}")
    return 0
