"""Client side of the project-server protocol.

:class:`BlueprintClient` is what wrapper programs embed; ``postEvent`` is
the command-line spelling the paper's shell wrappers call::

    postEvent ckin up reg,verilog,4 "logic sim passed"

Beyond one-shot posts and queries, the client speaks the v2 dialect:
``stale()`` / ``pending()`` / ``status()`` / ``health()`` read the
server's incremental state, ``post_batch()`` ships several events as one
atomic FIFO window, and ``subscribe()`` opens a persistent connection
that yields ``STALE`` / ``FRESH`` push notifications as the engine
re-buckets objects.

Self-healing (the resilience layer that pairs with the server's
write-ahead journal):

* connect and read timeouts are separate knobs, so a hung server is
  distinguishable from a slow one;
* with a :class:`RetryPolicy`, *idempotent* commands (``query`` /
  ``stale`` / ``pending`` / ``status`` / ``health`` / ``ping``) retry
  transport failures with bounded exponential backoff plus jitter;
* ``ERR busy`` (the server's explicit backpressure rejection) is retried
  for **every** command, posts included — a busy rejection guarantees
  the event was not admitted, so resending cannot double-apply it;
* a persistent client whose pinned connection died *between* round
  trips (server restarted) transparently reconnects once and resends —
  the stale-socket rule, applied regardless of idempotency, because the
  previous round trip completed and this request never reached a live
  server;
* a subscription opened with ``auto_resync=True`` survives server
  bounces and slow-subscriber kicks: on EOF it reconnects (with
  backoff), pulls the server's ``stale`` snapshot, and synthesises the
  ``STALE`` / ``FRESH`` notifications that bring its tracked view — and
  therefore any mirror built from it — back in step.

What is *never* retried: a ``postEvent`` / ``batch`` that failed after
reaching a live server (other than ``ERR busy``) — the client cannot
know whether the wave ran, and the journal may have made it durable.
See ARCHITECTURE.md's retry matrix.
"""

from __future__ import annotations

import os
import random
import select
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.core.events import EventMessage
from repro.metadb.links import Direction
from repro.metadb.oid import OID
from repro.network.protocol import (
    ProtocolError,
    format_batch,
    format_post_event,
    parse_busy,
    parse_notification,
    parse_pending_response,
    parse_query_response,
    parse_stale_response,
    parse_status_response,
)


class ClientError(RuntimeError):
    """A transport failure or an ERR response from the server."""


class TransportError(ClientError):
    """The request may or may not have reached the server (socket-level).

    Retryable for idempotent commands; never auto-retried for posts
    except under the stale-pinned-socket rule.
    """


class BusyError(ClientError):
    """The server shed load before admitting the request.

    Always safe to retry — busy rejections happen before journaling and
    queueing, so the event provably did not run.
    """

    def __init__(self, response: str, retry_after: float) -> None:
        super().__init__(response)
        self.retry_after = retry_after


class SubscriptionClosed(ClientError):
    """The push stream ended (server restart or slow-subscriber kick)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    ``attempts`` counts total tries (1 = no retry).  Delay before retry
    *n* (0-based) is ``base_delay * 2**n`` capped at ``max_delay``, then
    spread by ``jitter`` (a fraction: 0.25 means ±25%) so a fleet of
    wrapper scripts bounced by one server restart does not reconnect in
    lockstep.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    retry_busy: bool = True

    def delay(self, attempt: int) -> float:
        base = min(self.max_delay, self.base_delay * (2**attempt))
        if not self.jitter:
            return base
        spread = base * self.jitter
        return max(0.0, base + random.uniform(-spread, spread))


@dataclass(frozen=True)
class Notification:
    """One push line from a subscribed connection."""

    verb: str  # "STALE" | "FRESH"
    oid: OID

    @property
    def is_stale(self) -> bool:
        return self.verb == "STALE"


class Subscription:
    """A persistent subscribed connection yielding push notifications.

    Iterate it (blocks until the server pushes or closes), or poll with
    :meth:`next` under a timeout.  Use as a context manager so the
    socket is released deterministically::

        with client.subscribe() as sub:
            note = sub.next(timeout=5.0)

    With *resubscribe* / *resync* callables attached (see
    ``BlueprintClient.subscribe(auto_resync=True)``), an EOF triggers
    reconnect-and-reconcile instead of an error: the subscription
    tracks the set of OIDs it has reported stale (``view``), fetches
    the server's stale snapshot after reconnecting, and emits synthetic
    notifications for the difference — so a digital-twin mirror driven
    by this stream converges to the true state even across a gap.
    """

    def __init__(
        self,
        conn: socket.socket,
        *,
        resubscribe: Callable[[], socket.socket] | None = None,
        resync: Callable[[], list[OID]] | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._conn = conn
        self._buffer = bytearray()
        self._closed = False
        self._resubscribe = resubscribe
        self._resync = resync
        self._retry = retry or RetryPolicy(attempts=8)
        self.view: set[OID] = set()
        self._synthetic: deque[Notification] = deque()
        self.resyncs = 0

    def _readline(self, timeout: float | None) -> str:
        """Read one newline-terminated line, honouring *timeout*.

        Bytes accumulate in a buffer owned by this object: a timeout
        firing mid-line keeps the partial line for the next call,
        whereas a buffered socket file is left in an undefined state
        after a timeout and silently drops what it already consumed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                raw = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return raw.decode("utf-8", errors="replace")
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not select.select(
                    [self._conn], [], [], remaining
                )[0]:
                    raise ClientError("no notification: timed out")
            try:
                chunk = self._conn.recv(4096)
            except OSError as exc:
                raise SubscriptionClosed(f"no notification: {exc}") from exc
            if not chunk:
                raise SubscriptionClosed("subscription closed by server")
            self._buffer.extend(chunk)

    def next(self, timeout: float | None = None) -> Notification:
        """Block until the next notification.

        Raises :class:`ClientError` on timeout; :class:`SubscriptionClosed`
        on EOF unless resubscribe-with-resync is attached, in which case
        the gap is healed transparently (synthetic notifications first).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._synthetic:
                return self._track(self._synthetic.popleft())
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                line = self._readline(remaining).strip()
            except SubscriptionClosed:
                if self._resubscribe is None or self._closed:
                    raise
                self._recover()
                continue
            try:
                verb, oid = parse_notification(line)
            except ProtocolError as exc:
                raise ClientError(str(exc)) from exc
            return self._track(Notification(verb, oid))

    def _track(self, note: Notification) -> Notification:
        if note.is_stale:
            self.view.add(note.oid)
        else:
            self.view.discard(note.oid)
        return note

    def _recover(self) -> None:
        """Reconnect (with backoff) and reconcile the tracked view."""
        try:
            self._conn.close()
        except OSError:
            pass
        self._buffer.clear()
        attempt = 0
        while True:
            try:
                self._conn = self._resubscribe()
                break
            except ClientError:
                attempt += 1
                if attempt >= self._retry.attempts:
                    raise SubscriptionClosed(
                        f"resubscribe failed after {attempt} attempts"
                    ) from None
                time.sleep(self._retry.delay(attempt - 1))
        self.resyncs += 1
        if self._resync is None:
            return
        snapshot = set(self._resync())
        # Everything that went stale during the gap (or whose STALE line
        # we lost) first, then everything that went fresh; inside each
        # group, deterministic OID order.
        for oid in sorted(snapshot - self.view, key=OID.sort_key):
            self._synthetic.append(Notification("STALE", oid))
        for oid in sorted(self.view - snapshot, key=OID.sort_key):
            self._synthetic.append(Notification("FRESH", oid))

    def __iter__(self) -> Iterator[Notification]:
        while True:
            try:
                yield self.next(timeout=None)
            except ClientError:
                return

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._conn.close()

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class BlueprintClient:
    """A small line-protocol client.

    By default every call opens a one-shot connection: wrapper scripts
    stay trivial (no connection state to manage) at a negligible cost
    for occasional posts.  High-rate callers (dashboards, batch
    drivers) pass ``persistent=True`` to pin one connection across
    calls — connection setup dominates wire latency under concurrency,
    so this is roughly an order of magnitude more events/sec.  A
    persistent client is not thread-safe; give each thread its own.
    ``subscribe()`` always hands back its own dedicated connection.

    ``timeout`` is the legacy single knob; ``connect_timeout`` /
    ``read_timeout`` override it separately.  Pass ``retry`` to opt
    into self-healing (see the module docstring for exactly what is
    and is not retried).
    """

    host: str = "127.0.0.1"
    port: int = 7865
    timeout: float = 5.0
    persistent: bool = False
    connect_timeout: float | None = None
    read_timeout: float | None = None
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        self._conn: socket.socket | None = None
        self._file = None
        self._pinned_used = False

    @property
    def _connect_timeout(self) -> float:
        return self.connect_timeout if self.connect_timeout is not None else self.timeout

    @property
    def _read_timeout(self) -> float:
        return self.read_timeout if self.read_timeout is not None else self.timeout

    def _connect(self) -> socket.socket:
        try:
            conn = socket.create_connection(
                (self.host, self.port), timeout=self._connect_timeout
            )
        except OSError as exc:
            raise TransportError(
                f"cannot reach project server at {self.host}:{self.port}: {exc}"
            ) from exc
        conn.settimeout(self._read_timeout)
        return conn

    def close(self) -> None:
        """Drop the pinned connection (no-op for one-shot clients)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        self._pinned_used = False

    def __enter__(self) -> "BlueprintClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- transport ------------------------------------------------------------

    def _roundtrip(self, line: str) -> str:
        if self.persistent:
            return self._roundtrip_persistent(line)
        with self._connect() as conn:
            try:
                conn.sendall((line + "\n").encode("utf-8"))
                file = conn.makefile("r", encoding="utf-8")
                response = file.readline().strip()
            except OSError as exc:
                raise TransportError(
                    f"project server at {self.host}:{self.port} dropped: {exc}"
                ) from exc
        if not response:
            raise TransportError("empty response from project server")
        return response

    def _roundtrip_persistent(self, line: str) -> str:
        """One round trip on the pinned connection.

        A pinned socket that already served a round trip can die
        between calls — typically because the server restarted.  That
        failure mode is detected here (error on a *reused* socket) and
        healed with exactly one reconnect-and-resend, for any command:
        the previous round trip completed, so this request was never
        processed by a live server.  A fresh connection that fails gets
        no such retry — the server is actually unreachable or dropped
        this very request mid-flight.
        """
        for attempt in (0, 1):
            reused = self._conn is not None and self._pinned_used
            if self._conn is None:
                self._conn = self._connect()
                self._file = self._conn.makefile("r", encoding="utf-8")
                self._pinned_used = False
            try:
                self._conn.sendall((line + "\n").encode("utf-8"))
                response = self._file.readline().strip()
                if not response:
                    raise OSError("server closed the connection")
            except OSError as exc:
                self.close()
                if reused and attempt == 0:
                    continue  # stale pinned socket: reconnect once
                raise TransportError(
                    f"project server at {self.host}:{self.port} dropped: {exc}"
                ) from exc
            self._pinned_used = True
            return response
        raise TransportError("unreachable")  # pragma: no cover

    def _request(self, line: str, *, idempotent: bool) -> str:
        """Round-trip with the retry policy applied.

        Transport failures retry only for idempotent commands; ``ERR
        busy`` retries for everything (explicit non-admission), honouring
        the server's retry-after hint.
        """
        policy = self.retry
        attempts = policy.attempts if policy is not None else 1
        attempt = 0
        while True:
            try:
                response = self._roundtrip(line)
            except TransportError:
                attempt += 1
                if policy is None or not idempotent or attempt >= attempts:
                    raise
                time.sleep(policy.delay(attempt - 1))
                continue
            hint = parse_busy(response)
            if hint is not None:
                attempt += 1
                if (
                    policy is None
                    or not policy.retry_busy
                    or attempt >= attempts
                ):
                    raise BusyError(response, hint)
                time.sleep(max(hint, policy.delay(attempt - 1)))
                continue
            return response

    def _ok_body(self, line: str, *, idempotent: bool = False) -> str:
        """Send *line*; return the body of the OK response or raise."""
        response = self._request(line, idempotent=idempotent)
        if not response.startswith("OK"):
            raise ClientError(response)
        return response[2:].strip()

    # -- commands -------------------------------------------------------------

    @staticmethod
    def _as_event(
        name: str,
        target: OID | str,
        direction: Direction | str = Direction.DOWN,
        arg: str = "",
        user: str = "",
    ) -> EventMessage:
        target = OID.parse(target) if isinstance(target, str) else target
        direction = (
            Direction.parse(direction) if isinstance(direction, str) else direction
        )
        return EventMessage(
            name=name, direction=direction, target=target, arg=arg, user=user
        )

    def post_event(
        self,
        name: str,
        target: OID | str,
        direction: Direction | str = Direction.DOWN,
        arg: str = "",
        user: str = "",
    ) -> int:
        """Post one event; returns the server-assigned sequence number."""
        event = self._as_event(name, target, direction, arg, user)
        detail = self._ok_body(format_post_event(event))
        return int(detail) if detail else 0

    def post_batch(
        self, events: Iterable[EventMessage | tuple]
    ) -> list[int]:
        """Post several events as one atomic FIFO window.

        Each item is an :class:`EventMessage` or an argument tuple for
        :meth:`post_event` (``(name, target[, direction[, arg[, user]]])``).
        The server validates every target before posting anything, so a
        single unknown OID rejects the whole batch.  Returns the assigned
        sequence numbers in order.
        """
        messages = [
            event
            if isinstance(event, EventMessage)
            else self._as_event(*event)
            for event in events
        ]
        detail = self._ok_body(format_batch(messages))
        return [int(token) for token in detail.split()]

    def query(self, oid: OID | str) -> dict[str, str]:
        """Fetch the property state of one OID as text values.

        The wire format shlex-quotes values, so properties holding the
        paper's ``"logic sim passed"``-style strings round-trip intact.
        """
        oid = OID.parse(oid) if isinstance(oid, str) else oid
        body = self._ok_body(f"query {oid.wire()}", idempotent=True)
        try:
            return parse_query_response(body)
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def stale(self) -> list[OID]:
        """The server's incremental stale set (sorted), no scan involved."""
        try:
            return parse_stale_response(self._ok_body("stale", idempotent=True))
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def pending(self) -> dict[OID, tuple[str, ...]]:
        """What still blocks the planned state: OID → failing checks."""
        try:
            return parse_pending_response(
                self._ok_body("pending", idempotent=True)
            )
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def status(self) -> dict[str, int]:
        """Server/engine counters (objects, stale, queue, waves, ...)."""
        try:
            return parse_status_response(
                self._ok_body("status", idempotent=True)
            )
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def health(self) -> dict[str, int]:
        """Durability/backpressure gauges: journal lag, queue depths,
        lock waits, busy rejections.  Answered lock-free by the server,
        so it works even when writers are wedged."""
        try:
            return parse_status_response(
                self._ok_body("health", idempotent=True)
            )
        except ProtocolError as exc:
            raise ClientError(str(exc)) from exc

    def _open_subscription(self) -> socket.socket:
        """Connect, send ``subscribe``, consume the ack; returns the socket."""
        conn = self._connect()
        conn.settimeout(None)  # blocking; Subscription handles timeouts
        try:
            conn.sendall(b"subscribe\n")
        except OSError as exc:
            conn.close()
            raise TransportError(f"subscribe failed: {exc}") from exc
        probe = Subscription(conn)
        try:
            ack = probe._readline(self.timeout).strip()
        except ClientError:
            conn.close()
            raise
        if not ack.startswith("OK"):
            conn.close()
            raise ClientError(ack or "empty response from project server")
        return conn

    def subscribe(self, *, auto_resync: bool = False) -> Subscription:
        """Open a persistent connection receiving push notifications.

        The server acknowledges with ``OK subscribed`` and then writes
        ``STALE <oid>`` / ``FRESH <oid>`` lines the moment a wave
        re-buckets an object — no polling.

        With ``auto_resync=True`` the subscription heals itself: on EOF
        (server bounce, slow-subscriber kick) it reconnects with
        backoff, re-subscribes, fetches the ``stale`` snapshot over a
        separate one-shot exchange, and yields synthetic notifications
        reconciling its tracked view — a mirror driven by this stream
        converges even across the gap.
        """
        conn = self._open_subscription()
        if not auto_resync:
            return Subscription(conn)
        snapshot_client = BlueprintClient(
            host=self.host,
            port=self.port,
            timeout=self.timeout,
            connect_timeout=self.connect_timeout,
            read_timeout=self.read_timeout,
            retry=self.retry or RetryPolicy(),
        )
        return Subscription(
            conn,
            resubscribe=self._open_subscription,
            resync=snapshot_client.stale,
            retry=self.retry or RetryPolicy(attempts=8),
        )

    def ping(self) -> bool:
        return self._request("ping", idempotent=True) == "PONG"


def post_event_main(argv: list[str] | None = None) -> int:
    """The ``postEvent`` console command used by wrapper shell scripts.

    Usage: ``postEvent EVENT up|down BLOCK,VIEW,VERSION ["ARG"]``.
    Server location comes from ``$BLUEPRINT_HOST`` / ``$BLUEPRINT_PORT``
    (defaults 127.0.0.1:7865); ``$BLUEPRINT_RETRIES`` enables the retry
    policy with that many attempts.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="postEvent",
        description="post a design event to the BluePrint",
        epilog=(
            "The server also answers: query OID | stale | pending | "
            "status | health | subscribe (push STALE/FRESH lines) | "
            'batch "postEvent ..." ... — see damocles serve.'
        ),
    )
    parser.add_argument("event")
    parser.add_argument("direction", choices=["up", "down"])
    parser.add_argument("oid", help="BLOCK,VIEW,VERSION")
    parser.add_argument("arg", nargs="?", default="")
    parser.add_argument("--user", default=os.environ.get("USER", ""))
    args = parser.parse_args(argv)

    retries = int(os.environ.get("BLUEPRINT_RETRIES", "0"))
    client = BlueprintClient(
        host=os.environ.get("BLUEPRINT_HOST", "127.0.0.1"),
        port=int(os.environ.get("BLUEPRINT_PORT", "7865")),
        retry=RetryPolicy(attempts=retries) if retries > 0 else None,
    )
    try:
        seq = client.post_event(
            args.event, args.oid, args.direction, args.arg, args.user
        )
    except (ClientError, Exception) as exc:
        print(f"postEvent: {exc}")
        return 1
    print(f"posted #{seq}")
    return 0
