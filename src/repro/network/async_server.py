"""The asyncio project server: multiplexed framing, pipelining,
backpressure.

``benchmarks/test_bench_server.py`` proved the engine is not the
bottleneck — persistent connections alone buy ~10×, which means framing
and scheduling cap throughput.  :class:`AsyncProjectServer` replaces
thread-per-connection with one event loop and two transports on the
same port, classified per connection from its first byte:

* **frames** (:mod:`repro.network.framing`): length-prefixed JSON
  frames with tagged request/response correlation.  One connection
  carries many in-flight requests; responses complete out of order, so
  a pipelined client streams a whole window of ``postEvent`` frames
  without waiting for round trips.
* **lines**: the paper's original dialect, kept as a compat shim — a
  wrapper shell script from 1995 connects to the same port and is none
  the wiser.

**Write path / group commit.**  Every byte of engine work runs on the
loop thread, so admission order *is* apply order and the PR-4
reader-writer discipline degenerates to its ideal form: writes are the
exclusive section by construction, reads interleave between waves, and
nothing ever blocks on a lock.  With a journal attached, a write is
``bus.admit_durable`` (validate + buffered append, no barrier) → the
wave, inline → a *deferred* response parked on the
:class:`_DurabilityGate`.  The gate runs at most one ``fdatasync`` at a
time in an executor thread and releases every parked response the
barrier covered — a pipeline window of N posts costs one disk barrier,
not N, which is where the journaled-throughput multiple comes from.

Policy-v2 governance rides the same write path: ``policy propose`` /
``approve`` / ``rollback`` are lock-exclusive journaled writes, and
``policy status`` / ``audit`` answer inline from the governed policy.

**Subscriber backpressure.**  The threaded server disconnects a
subscriber whose bounded queue overflows.  Framed subscribers instead
degrade: when a subscriber's send buffer crosses the high-water mark
the server emits a ``PAUSE`` credit frame and starts *coalescing* —
per-OID latest-state deltas accumulate in a map (bounded by the object
count, not the event rate) while the socket drains.  When the client
catches up, the coalesced deltas flush (each marked
``"coalesced": true``), a ``RESUME`` credit frame closes the gap, and
live push resumes.  A slow subscriber is therefore *never*
disconnected and always converges to the true stale set.  Clients can
also send ``PAUSE`` / ``RESUME`` themselves to control their own
stream.  Line-shim subscribers keep close-on-overflow (their dialect
has no credit verbs) but now receive a final ``ERR overloaded`` line
before the close.
"""

from __future__ import annotations

import asyncio
import heapq
import threading
from typing import TYPE_CHECKING, Callable

from repro.core.engine import BlueprintEngine
from repro.core.journal import JournalEntry
from repro.network.bus import EventBus
from repro.network.framing import (
    CREDIT_PAUSE,
    CREDIT_RESUME,
    FrameDecoder,
    FramingError,
    encode_frame,
    is_frame_byte,
    request_to_command,
)
from repro.network.protocol import (
    LOCK_EXCLUSIVE,
    OVERLOAD_LINE,
    Command,
    ProtocolError,
    err_response,
    parse_notification,
)

if TYPE_CHECKING:
    from repro.network.wal import WriteAheadLog

#: Line-shim subscribers have no credit verbs, so their send buffer is
#: bounded the blunt way: past this many unread bytes the server writes
#: a final ``ERR overloaded`` line and closes (the threaded server's
#: behaviour, made diagnosable).
LINE_SUBSCRIBER_BUFFER = 64 * 1024

#: Framed subscribers switch to coalescing once this many unread bytes
#: sit in the transport's send buffer (and resume below it).
FRAME_SUBSCRIBER_HIGH_WATER = 64 * 1024

#: Optional SO_SNDBUF applied to subscriber sockets (None = OS default).
#: Tests shrink it so backpressure triggers without megabytes of spam.
SUBSCRIBER_SNDBUF: int | None = None


class _DurabilityGate:
    """Group commit for the event loop: park responses until on-disk.

    Writes are journaled with ``defer_sync=True`` (buffered append, no
    barrier), their wave runs, and then the response is parked here.
    One executor thread at a time runs ``wal.sync`` for the journal's
    current tail; every parked response at or below the barrier is
    released in one sweep.  Later writes keep landing while the barrier
    runs — the pile-up is exactly what group commit amortises.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, bus: EventBus) -> None:
        self._loop = loop
        self._bus = bus
        self._pending: list[tuple[int, int, JournalEntry, str, Callable[[str], None]]] = []
        self._tiebreak = 0
        self._task: asyncio.Task | None = None

    @property
    def depth(self) -> int:
        """Responses parked awaiting a disk barrier (overload gauge)."""
        return len(self._pending)

    def submit(
        self, entry: JournalEntry, response: str, send: Callable[[str], None]
    ) -> None:
        wal = self._bus.wal
        assert wal is not None
        if wal.durable_seq >= entry.seq or wal.broken or not wal.fsync:
            # Already covered by an earlier barrier (or the journal is
            # past helping): ensure_durable settles instantly.
            send(self._bus.ensure_durable(entry, response))
            return
        self._tiebreak += 1
        heapq.heappush(
            self._pending, (entry.seq, self._tiebreak, entry, response, send)
        )
        if self._task is None or self._task.done():
            self._task = self._loop.create_task(self._run())

    async def _run(self) -> None:
        bus = self._bus
        wal = bus.wal
        assert wal is not None
        while self._pending:
            target = wal.last_seq
            try:
                await self._loop.run_in_executor(None, wal.sync, target)
            except Exception:
                # Per-entry accounting below returns the honest ERR via
                # ensure_durable (which re-checks the broken flag).
                pass
            durable, broken = wal.durable_seq, wal.broken
            while self._pending and (broken or self._pending[0][0] <= durable):
                _seq, _tie, entry, response, send = heapq.heappop(self._pending)
                # Instant: the entry is either covered or broken.
                send(bus.ensure_durable(entry, response))


class AsyncProjectServer:
    """Lifecycle-compatible drop-in for :class:`ProjectServer`.

    Same constructor knobs, same ``start()/stop()``/context-manager
    surface, same ``.bus``; the transport underneath is an asyncio
    event loop serving frames and/or the line compat shim.

    ``transport`` selects what the port accepts: ``"auto"`` (default)
    classifies each connection from its first byte, ``"frames"`` and
    ``"lines"`` refuse the other dialect.
    """

    def __init__(
        self,
        engine: BlueprintEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        wal: "WriteAheadLog | None" = None,
        busy_limit: int | None = None,
        checkpoint_every: int | None = None,
        checkpointer: Callable[[], bool] | None = None,
        transport: str = "auto",
        policy=None,
    ) -> None:
        if transport not in ("auto", "frames", "lines"):
            raise ValueError(f"unknown transport {transport!r}")
        self.engine = engine
        self.host = host
        self.port = port
        self.transport = transport
        self.bus = EventBus(
            engine,
            wal=wal,
            busy_limit=busy_limit,
            checkpoint_every=checkpoint_every,
            checkpointer=checkpointer,
            policy=policy,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._gate: _DurabilityGate | None = None
        self._connections: set[asyncio.StreamWriter] = set()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AsyncProjectServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self.bus.reopen()  # no-op unless a previous stop() closed it
        self._loop = asyncio.new_event_loop()
        self._gate = _DurabilityGate(self._loop, self.bus)

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="blueprint-async-server", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._open(), self._loop)
        try:
            future.result(timeout=10)
        except Exception:
            self._teardown_loop()
            raise
        return self

    async def _open(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def stop(self) -> None:
        if self._thread is None:
            return
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop)
        try:
            future.result(timeout=10)
        except Exception:
            pass  # shutdown is best-effort; the loop stops regardless
        self._teardown_loop()
        self.bus.close()

    def _teardown_loop(self) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._loop.close()
        self._loop = None
        self._thread = None
        self._server = None
        self._gate = None

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Abort (not close): a subscriber blocked in recv() must see the
        # shutdown now, not when its send buffer happens to flush.
        for writer in list(self._connections):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._connections.clear()

    def __enter__(self) -> "AsyncProjectServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # -- shared command core -----------------------------------------------

    def _gauges(self) -> dict[str, int]:
        """Async-transport extras for the ``health`` command."""
        return {
            "durability_backlog": self._gate.depth if self._gate else 0,
            "connections": len(self._connections),
        }

    def _apply_write(
        self, command: Command
    ) -> tuple[str, JournalEntry | None]:
        """Admit + run one write on the loop thread.

        Returns ``(response, entry)``; a non-None *entry* means the
        response must wait on the durability gate before it is sent.
        Everything here is synchronous: no await sits between admission
        and apply, so journal order and wave order coincide by
        construction (the single-threaded analogue of the threaded
        server's seq-ordered apply gate).
        """
        bus = self.bus
        if bus.wal is None:
            return bus.handle_command(command), None
        if bus.busy_limit is not None and self._gate.depth >= bus.busy_limit:
            # The async writer backlog: responses parked on the gate.
            # Shed before admission, so a retry is provably safe.
            return bus.reject_busy(f"durability backlog {self._gate.depth}"), None
        admitted = bus.admit_durable(command)
        if isinstance(admitted, str):
            return admitted, None
        entry, events = admitted
        try:
            bus.wait_turn(entry.seq)  # immediate: loop-ordered admission
            response = bus.apply_admitted(entry, events)
        finally:
            bus.done_turn(entry.seq)
        return response, entry

    def _execute(
        self, command: Command, send: Callable[[str], None]
    ) -> None:
        """Run *command* and deliver its response through *send*.

        Writes may defer delivery to the durability gate; everything
        else answers immediately.  ``subscribe``/``quit``/``health``
        are transport-specific and handled by the callers.
        """
        if command.kind in LOCK_EXCLUSIVE:
            response, entry = self._apply_write(command)
            if entry is None:
                send(response)
            else:
                self._gate.submit(entry, response, send)
            return
        send(self.bus.handle_command(command))

    # -- connection dispatch -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            try:
                first = await reader.readexactly(1)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            if is_frame_byte(first[0]):
                if self.transport == "lines":
                    return  # frames refused on a lines-only port
                await _FramedConnection(self, reader, writer).run(first)
            else:
                if self.transport == "frames":
                    writer.write(b"ERR framed transport required\n")
                    return
                await _LineConnection(self, reader, writer).run(first)
        except (ConnectionError, OSError):
            pass  # client reset mid-exchange: end quietly
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
            except Exception:
                pass


class _LineConnection:
    """The compat shim: the threaded server's line dialect, on the loop."""

    def __init__(
        self,
        server: AsyncProjectServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._server = server
        self._reader = reader
        self._writer = writer
        self._subscriber = None
        self._overloaded = False

    def _send_line(self, line: str) -> None:
        self._writer.write((line + "\n").encode("utf-8"))

    async def run(self, first: bytes) -> None:
        bus = self._server.bus
        buffer = bytearray(first)
        try:
            while True:
                while (newline := buffer.find(b"\n")) >= 0:
                    raw = buffer[:newline].decode("utf-8", errors="replace")
                    del buffer[: newline + 1]
                    line = raw.strip()
                    if not line:
                        continue
                    if await self._dispatch(line):
                        await _drain_quietly(self._writer)
                        return
                await _drain_quietly(self._writer)
                chunk = await self._reader.read(65536)
                if not chunk:
                    return
                buffer.extend(chunk)
        finally:
            if self._subscriber is not None:
                bus.unsubscribe(self._subscriber)
                self._subscriber = None

    async def _dispatch(self, line: str) -> bool:
        """Handle one line; returns True when the connection should end."""
        server = self._server
        bus = server.bus
        try:
            command = bus.parse_line(line)
        except ProtocolError as exc:
            self._send_line(err_response(str(exc)))
            return False
        if command.kind == "subscribe":
            self._subscribe(command)
            return False
        if command.kind == "health":
            self._send_line(
                bus.handle_command(command, health_extra=server._gauges())
            )
            return False
        done = asyncio.get_running_loop().create_future()
        server._execute(command, lambda response: done.set_result(response))
        # The line dialect is strictly request/response ordered, so a
        # deferred (durability-gated) response blocks this connection's
        # next command — but not the loop: other connections keep going.
        response = await done
        self._send_line(response)
        return response == "BYE"

    def _subscribe(self, command: Command) -> None:
        bus = self._server.bus
        if self._subscriber is None:
            writer = self._writer
            _shrink_sndbuf(writer)

            def subscriber(line: str) -> None:
                # Loop thread, mid-wave.  write() only buffers; the
                # bound is the transport's unread backlog.
                if self._overloaded:
                    raise BrokenPipeError("subscriber overloaded")
                size = writer.transport.get_write_buffer_size()
                if size > LINE_SUBSCRIBER_BUFFER:
                    # No credit verbs in this dialect: say why, close,
                    # and unsubscribe (the raise drops us from the bus).
                    self._overloaded = True
                    writer.write((OVERLOAD_LINE + "\n").encode("utf-8"))
                    writer.close()
                    raise BrokenPipeError("subscriber overloaded")
                writer.write((line + "\n").encode("utf-8"))

            self._subscriber = subscriber
            self._send_line(bus.handle_command(command, subscriber=subscriber))
        else:
            self._send_line(
                bus.handle_command(command, subscriber=self._subscriber)
            )


class _FramedConnection:
    """One framed connection: tagged multiplexing plus the push stream."""

    def __init__(
        self,
        server: AsyncProjectServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._server = server
        self._reader = reader
        self._writer = writer
        self._subscriber: _FramedSubscriber | None = None

    def send_frame(self, payload: dict) -> None:
        self._writer.write(encode_frame(payload))

    def _send_response(self, request_id: object, response: str) -> None:
        self.send_frame({"id": request_id, "response": response})

    async def run(self, first: bytes) -> None:
        bus = self._server.bus
        decoder = FrameDecoder()
        data: bytes = first
        try:
            while True:
                try:
                    frames = decoder.feed(data)
                except FramingError as exc:
                    self.send_frame({"error": str(exc)})
                    return
                for payload in frames:
                    if self._handle(payload):
                        await _drain_quietly(self._writer)
                        return
                # Read backpressure: stop pulling requests while this
                # client is not consuming its responses.
                await _drain_quietly(self._writer)
                data = await self._reader.read(65536)
                if not data:
                    return
        finally:
            if self._subscriber is not None:
                bus.unsubscribe(self._subscriber.offer)
                self._subscriber.closed = True
                self._subscriber = None

    def _handle(self, payload: dict) -> bool:
        """Process one request frame; True ends the connection."""
        server = self._server
        bus = server.bus
        credit = payload.get("credit")
        if credit is not None:
            self._handle_credit(credit)
            return False
        request_id = payload.get("id")
        bus.note_wire_message()
        try:
            command = request_to_command(payload)
        except ProtocolError as exc:
            bus.errors.append(str(exc))
            self._send_response(request_id, err_response(str(exc)))
            return False
        if command.kind == "quit":
            self._send_response(request_id, "BYE")
            return True
        if command.kind == "subscribe":
            self._subscribe(request_id, command)
            return False
        if command.kind == "health":
            self._send_response(
                request_id,
                bus.handle_command(command, health_extra=server._gauges()),
            )
            return False
        self._execute_tagged(request_id, command)
        return False

    def _execute_tagged(self, request_id: object, command: Command) -> None:
        # Bind the tag now; the response may be deferred (durability
        # gate) and complete after later requests already answered —
        # that reordering is the multiplexing contract.
        self._server._execute(
            command, lambda response: self._send_response(request_id, response)
        )

    def _subscribe(self, request_id: object, command: Command) -> None:
        if self._subscriber is None:
            _shrink_sndbuf(self._writer)
            self._subscriber = _FramedSubscriber(self)
        response = self._server.bus.handle_command(
            command, subscriber=self._subscriber.offer
        )
        self._send_response(request_id, response)

    def _handle_credit(self, credit: object) -> None:
        subscriber = self._subscriber
        if subscriber is None:
            return
        if credit == CREDIT_PAUSE:
            subscriber.pause_from_client()
        elif credit == CREDIT_RESUME:
            subscriber.resume_from_client()


class _FramedSubscriber:
    """Push stream with credit-based backpressure and coalescing.

    Live transitions stream as ``{"push": "STALE <oid>"}`` frames.  When
    the client stops keeping up (send buffer over the high-water mark)
    or explicitly sends ``PAUSE``, the stream degrades: a ``PAUSE``
    credit frame tells the client pushes are now coalesced, and further
    transitions collapse into a per-OID latest-state map.  Once the
    socket drains (or the client sends ``RESUME``), the map flushes as
    ``"coalesced": true`` deltas bracketed by a ``RESUME`` credit frame.
    The subscriber is never dropped for being slow; its memory cost is
    bounded by the object count, not the event rate.
    """

    def __init__(self, conn: _FramedConnection) -> None:
        self._conn = conn
        self.closed = False
        self._coalescing = False
        self._client_paused = False
        #: OID wire string -> latest verb seen while coalescing.
        self._pending: dict[str, str] = {}
        self._flusher: asyncio.Task | None = None
        self.coalesce_rounds = 0

    # -- bus-facing (called synchronously from the wave, on the loop) ------

    def offer(self, line: str) -> None:
        if self.closed:
            raise BrokenPipeError("subscriber connection closed")
        if self._coalescing or self._client_paused:
            self._absorb(line)
            return
        writer = self._conn._writer
        if writer.transport.get_write_buffer_size() > FRAME_SUBSCRIBER_HIGH_WATER:
            self._enter_coalescing()
            self._absorb(line)
            return
        self._conn.send_frame({"push": line})

    def _absorb(self, line: str) -> None:
        verb, oid = parse_notification(line)
        self._pending[oid.wire()] = verb

    def _enter_coalescing(self) -> None:
        self._coalescing = True
        self.coalesce_rounds += 1
        self._conn.send_frame({"credit": CREDIT_PAUSE})
        if self._flusher is None or self._flusher.done():
            self._flusher = asyncio.get_running_loop().create_task(self._flush())

    # -- client credit -----------------------------------------------------

    def pause_from_client(self) -> None:
        if not self._client_paused:
            self._client_paused = True

    def resume_from_client(self) -> None:
        if not self._client_paused:
            return
        self._client_paused = False
        if self._coalescing:
            # The flusher parked itself while the client was paused;
            # restart it so the coalesced backlog actually replays.
            if self._flusher is None or self._flusher.done():
                self._flusher = asyncio.get_running_loop().create_task(
                    self._flush()
                )
        else:
            self._enter_coalescing()  # flush whatever accumulated

    # -- catch-up ----------------------------------------------------------

    async def _flush(self) -> None:
        """Wait for the socket to drain, then replay coalesced deltas."""
        writer = self._conn._writer
        try:
            while not self.closed:
                await writer.drain()
                if self._client_paused:
                    return  # client asked for silence; RESUME restarts us
                if not self._pending:
                    break
                oid, verb = next(iter(self._pending.items()))
                del self._pending[oid]
                self._conn.send_frame(
                    {"push": f"{verb} {oid}", "coalesced": True}
                )
            if not self.closed:
                self._conn.send_frame({"credit": CREDIT_RESUME})
                self._coalescing = False
        except (ConnectionError, OSError):
            self.closed = True


def _shrink_sndbuf(writer: asyncio.StreamWriter) -> None:
    """Apply the test-only SUBSCRIBER_SNDBUF override, if armed."""
    if SUBSCRIBER_SNDBUF is None:
        return
    import socket as socket_module

    sock = writer.get_extra_info("socket")
    if sock is not None:
        sock.setsockopt(
            socket_module.SOL_SOCKET, socket_module.SO_SNDBUF, SUBSCRIBER_SNDBUF
        )


async def _drain_quietly(writer: asyncio.StreamWriter) -> None:
    try:
        await writer.drain()
    except (ConnectionError, OSError):
        pass
