"""The DAMOCLES project server: a TCP front end for the BluePrint.

Figure 1 shows design events flowing from the design environment over the
network into the project server's message queue.  This server accepts the
line dialect of :mod:`repro.network.protocol` on localhost TCP, feeds an
:class:`~repro.network.bus.EventBus`, and applies a reader-writer lock
discipline per command kind:

* ``postEvent`` / ``batch`` acquire the exclusive writer lock, so engine
  work stays serialised and "events are processed sequentially,
  first-in first-out" as the paper requires;
* ``pending`` (a lineage scan) acquires the shared reader lock: any
  number of them run together, but never during a wave;
* ``query``, ``stale``, ``status`` and ``ping`` answer from GIL-atomic
  snapshots (one dict copy, the bus's stale-set mirror, plain counters)
  and take **no lock at all** — a designer's query completes even while
  a long wave is still running.

Policy-v2 governance commands ride the same discipline: ``policy
propose`` / ``policy approve`` / ``policy rollback`` are lock-exclusive
writes (they flow through the group-commit path and are journaled like
events), while ``policy status`` and ``audit`` answer lock-free from the
bus's governed policy.

``subscribe`` flips a connection into push mode: the bus's stale-set
listener writes ``STALE <oid>`` / ``FRESH <oid>`` lines straight to the
subscribed socket the moment a wave re-buckets an object.  Notifications
originate on whichever handler thread runs the wave, so each connection
guards its socket with a write mutex to keep push lines and command
responses from interleaving.
"""

from __future__ import annotations

import queue
import socket
import socketserver
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.engine import BlueprintEngine
from repro.network.bus import EventBus
from repro.network.protocol import (
    LOCK_EXCLUSIVE,
    LOCK_SHARED,
    OVERLOAD_LINE,
    ProtocolError,
    err_response,
)

if TYPE_CHECKING:
    from repro.core.policy import GovernedPolicy
    from repro.network.wal import WriteAheadLog


class ReadWriteLock:
    """A writer-preferring reader-writer lock with FIFO writers.

    Readers share; a writer excludes everyone.  Waiting writers block
    new readers (no writer starvation), and each writer draws a ticket
    on arrival and runs only when its ticket is served — a writer that
    arrives later can never barge past one already waiting, so posts
    from many clients enter the engine queue in arrival order.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._next_ticket = 0
        self._serving = 0
        # Contention gauges for the ``health`` command.  Plain ints
        # mutated under the condition lock, read lock-free (GIL-atomic).
        self.read_waits = 0
        self.write_waits = 0

    @property
    def waiting_writers(self) -> int:
        """Writers ticketed but not yet served — the real write backlog."""
        return max(0, self._next_ticket - self._serving - (1 if self._writer else 0))

    def stats(self) -> dict[str, int]:
        return {
            "lock_read_waits": self.read_waits,
            "lock_write_waits": self.write_waits,
            "waiting_writers": self.waiting_writers,
        }

    def acquire_read(self) -> None:
        with self._cond:
            # _next_ticket > _serving means a writer is waiting or active.
            if self._writer or self._next_ticket > self._serving:
                self.read_waits += 1
            while self._writer or self._next_ticket > self._serving:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            ticket = self._next_ticket
            self._next_ticket += 1
            if self._writer or self._readers or ticket != self._serving:
                self.write_waits += 1
            while self._writer or self._readers or ticket != self._serving:
                self._cond.wait()
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._serving += 1
            self._cond.notify_all()

    # context-manager views ------------------------------------------------

    class _Guard:
        def __init__(self, acquire, release) -> None:
            self._acquire = acquire
            self._release = release

        def __enter__(self) -> None:
            self._acquire()

        def __exit__(self, *exc_info: object) -> None:
            self._release()

    def reading(self) -> "ReadWriteLock._Guard":
        return self._Guard(self.acquire_read, self.release_read)

    def writing(self) -> "ReadWriteLock._Guard":
        return self._Guard(self.acquire_write, self.release_write)


#: Per-subscriber notification buffer: a consumer further behind than
#: this is dropped rather than allowed to block the publishing wave.
#: The dropped subscriber gets :data:`~repro.network.protocol.OVERLOAD_LINE`
#: as its final line before the close.
SUBSCRIBER_QUEUE_DEPTH = 256


class _Handler(socketserver.StreamRequestHandler):
    def setup(self) -> None:
        super().setup()
        server: "_TCPServer" = self.server  # type: ignore[assignment]
        with server.active_lock:
            server.active_connections.add(self.connection)
        # Push notifications arrive from other threads (whichever handler
        # runs the wave); responses come from this one.  One mutex per
        # connection keeps the two line streams from interleaving.
        self._send_lock = threading.Lock()
        self._subscriber = None
        self._notify_queue: "queue.Queue[str | None] | None" = None
        self._notify_thread: threading.Thread | None = None

    def _send(self, line: str) -> None:
        with self._send_lock:
            self.wfile.write((line + "\n").encode("utf-8"))

    def handle(self) -> None:
        server: "_TCPServer" = self.server  # type: ignore[assignment]
        while True:
            try:
                raw = self.rfile.readline()
                if not raw:
                    return
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                response = self._dispatch(server, line)
                if response is None:  # subscribe acked inline
                    continue
                self._send(response)
            except OSError:
                # The client reset or vanished mid-exchange: end this
                # connection quietly instead of a traceback per socket.
                return
            if response == "BYE":
                return

    def _dispatch(self, server: "_TCPServer", line: str) -> str | None:
        bus = server.bus
        try:
            command = bus.parse_line(line)
        except ProtocolError as exc:
            return err_response(str(exc))
        if command.kind == "health":
            # Lock-free on purpose: health must answer even when every
            # writer slot is wedged — that is exactly when it matters.
            return bus.handle_command(command, health_extra=server.rwlock.stats())
        if (
            command.kind in LOCK_EXCLUSIVE
            and bus.busy_limit is not None
            and server.rwlock.waiting_writers >= bus.busy_limit
        ):
            # Writer backlog bound: shed load before ticketing another
            # writer, so the queue of blocked handler threads (and the
            # memory of their pending events) stays bounded.
            return bus.reject_busy(
                f"writer backlog {server.rwlock.waiting_writers}"
            )
        if (
            command.kind in LOCK_EXCLUSIVE
            and bus.wal is not None
            and not bus.engine.db.lazy
        ):
            # Group commit: validate + journal + fsync OUTSIDE the
            # exclusive lock, so concurrent posts overlap their disk
            # barriers (one fsync covers many entries) instead of
            # serializing one fsync per event behind the lock.  The
            # seq-ordered turn gate then keeps wave order identical to
            # journal order (replay equivalence); waiting happens
            # BEFORE taking the write lock or two out-of-order writers
            # would deadlock.  Lazy databases stay on the fully-locked
            # path below: their validation faults shards in, which is a
            # mutation.
            admitted = bus.admit_durable(command)
            if isinstance(admitted, str):
                return admitted
            entry, events = admitted
            try:
                bus.wait_turn(entry.seq)
                with server.rwlock.writing():
                    response = bus.apply_admitted(entry, events)
            finally:
                # Normally a no-op (apply_admitted advanced the gate);
                # on an exception path it keeps later writers from
                # hanging on a turn that will never come.
                bus.done_turn(entry.seq)
            # The disk barrier is LAST: it overlaps the waves of later
            # entries, and every handler that reaches this point since
            # the previous barrier shares one fsync.  The client sees
            # OK only after its entry is durable.
            return bus.ensure_durable(entry, response)
        if command.kind in LOCK_EXCLUSIVE or (
            command.kind in ("query", "pending") and bus.engine.db.lazy
        ):
            # On a demand-faulting database, reads are not read-only:
            # resolving an OID or scanning lineages faults shards in
            # (and may evict others), mutating the shared index
            # registry.  Those commands degrade to the exclusive lock;
            # `stale`/`status`/`ping` stay lock-free (wire mirror and
            # GIL-atomic counters).
            with server.rwlock.writing():
                return bus.handle_command(command)
        if command.kind in LOCK_SHARED:
            with server.rwlock.reading():
                return bus.handle_command(command)
        if command.kind == "subscribe":
            return self._subscribe(server, command)
        return bus.handle_command(command)

    def _subscribe(self, server: "_TCPServer", command) -> None:
        """Register this connection for push lines and ack it.

        Notifications are decoupled from the publishing wave through a
        bounded queue drained by a pump thread: a subscriber that stops
        reading fills its queue and is dropped, instead of its full TCP
        buffer blocking the wave (which would hold the writer lock and
        wedge every client).  Registration and the ack share the send
        mutex, so no notification can reach the socket before the ack.
        """
        if self._subscriber is None:
            self._notify_queue = queue.Queue(maxsize=SUBSCRIBER_QUEUE_DEPTH)

            def pump() -> None:
                while True:
                    line = self._notify_queue.get()
                    if line is None:
                        return
                    try:
                        self._send(line)
                    except OSError:
                        return
                    if line == OVERLOAD_LINE:
                        # The diagnostic was the stream's last line; now
                        # the EOF the overflow used to deliver silently.
                        try:
                            self.connection.shutdown(socket.SHUT_RDWR)
                        except OSError:
                            pass
                        return

            self._notify_thread = threading.Thread(
                target=pump, name="blueprint-notify", daemon=True
            )
            # Start before the ack write: if that write fails (client
            # reset the connection), finish() can still join() a thread
            # that was actually started.  The pump shares the send lock,
            # so no notification can beat the ack onto the socket.
            self._notify_thread.start()

            def subscriber(line: str) -> None:
                try:
                    self._notify_queue.put_nowait(line)
                except queue.Full:
                    # Overflow: drop the oldest queued line to make room
                    # for a final ``ERR overloaded``, delivered in-order
                    # by the pump (which then closes the socket).  The
                    # re-raise unsubscribes us, so this fires once.
                    try:
                        self._notify_queue.get_nowait()
                    except queue.Empty:
                        pass
                    try:
                        self._notify_queue.put_nowait(OVERLOAD_LINE)
                    except queue.Full:
                        pass
                    raise

            self._subscriber = subscriber
            with self._send_lock:
                response = server.bus.handle_command(
                    command, subscriber=self._subscriber
                )
                self.wfile.write((response + "\n").encode("utf-8"))
        else:
            self._send(server.bus.handle_command(command, subscriber=self._subscriber))
        return None

    def finish(self) -> None:
        server: "_TCPServer" = self.server  # type: ignore[assignment]
        with server.active_lock:
            server.active_connections.discard(self.connection)
        if self._subscriber is not None:
            server.bus.unsubscribe(self._subscriber)
            self._subscriber = None
        if self._notify_queue is not None:
            try:
                self._notify_queue.put_nowait(None)
            except queue.Full:
                pass  # pump is wedged on a dead socket; it is a daemon
            if self._notify_thread is not None:
                self._notify_thread.join(timeout=2)
        super().finish()


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], bus: EventBus) -> None:
        super().__init__(address, _Handler)
        self.bus = bus
        self.rwlock = ReadWriteLock()
        # Live connections, so stop() can shut them down and give every
        # client (especially subscribers mid-read) a deterministic EOF
        # instead of a socket that lingers until its daemon thread dies.
        self.active_lock = threading.Lock()
        self.active_connections: set[socket.socket] = set()

    def close_active_connections(self) -> None:
        with self.active_lock:
            connections = list(self.active_connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


@dataclass
class ProjectServer:
    """Lifecycle wrapper: start/stop a threaded project server.

    Usage::

        server = ProjectServer(engine).start()
        ... clients connect to ("127.0.0.1", server.port) ...
        server.stop()
    """

    engine: BlueprintEngine
    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port
    #: Durability/backpressure knobs, forwarded to the bus (see
    #: :class:`~repro.network.bus.EventBus` for semantics).
    wal: "WriteAheadLog | None" = None
    busy_limit: int | None = None
    checkpoint_every: int | None = None
    checkpointer: "Callable[[], bool] | None" = None
    #: Pre-built governed policy (e.g. loaded from ``--policy FILE`` or
    #: restored from a checkpoint sidecar); None builds a fresh one.
    policy: "GovernedPolicy | None" = None

    def __post_init__(self) -> None:
        self._server: _TCPServer | None = None
        self._thread: threading.Thread | None = None
        self.bus = EventBus(
            self.engine,
            wal=self.wal,
            busy_limit=self.busy_limit,
            checkpoint_every=self.checkpoint_every,
            checkpointer=self.checkpointer,
            policy=self.policy,
        )

    @property
    def rwlock(self) -> ReadWriteLock | None:
        """The running server's reader-writer lock (None when stopped)."""
        return self._server.rwlock if self._server is not None else None

    def start(self) -> "ProjectServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        self.bus.reopen()  # no-op unless a previous stop() closed it
        self._server = _TCPServer((self.host, self.port), self.bus)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="blueprint-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        # Give every connected client a clean EOF; without this a
        # subscriber blocked in recv() would never learn the server died
        # (its handler thread is a daemon and simply lingers).
        self._server.close_active_connections()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._server = None
        self._thread = None
        self.bus.close()

    def __enter__(self) -> "ProjectServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)


def server_main(argv: list[str] | None = None) -> int:
    """CLI entry point: serve a blueprint file over TCP.

    Usage: ``blueprintd BLUEPRINT_FILE [--port N] [--db DB_JSON]``
    """
    import argparse

    from repro.core.blueprint import Blueprint
    from repro.metadb.database import MetaDatabase
    from repro.metadb.persistence import load_database

    parser = argparse.ArgumentParser(
        prog="blueprintd", description="DAMOCLES project BluePrint server"
    )
    parser.add_argument("blueprint", help="path to the blueprint rule file")
    parser.add_argument("--port", type=int, default=7865)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--db", help="optional JSON meta-database to load")
    args = parser.parse_args(argv)

    blueprint = Blueprint.from_file(args.blueprint)
    if args.db:
        db, _registry = load_database(args.db)
    else:
        db = MetaDatabase()
    engine = BlueprintEngine(db, blueprint)
    server = ProjectServer(engine, host=args.host, port=args.port).start()
    print(f"blueprintd: serving {blueprint.name!r} on {server.host}:{server.port}")
    try:
        while True:
            threading.Event().wait(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def wait_for_port(host: str, port: int, timeout: float = 5.0) -> bool:
    """Poll until a TCP port accepts connections (test helper)."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=0.2):
                return True
        except OSError:
            time.sleep(0.02)
    return False
