"""The DAMOCLES project server: a TCP front end for the BluePrint.

Figure 1 shows design events flowing from the design environment over the
network into the project server's message queue.  This server accepts the
line dialect of :mod:`repro.network.protocol` on localhost TCP, feeds an
:class:`~repro.network.bus.EventBus`, and serialises all engine work under
one lock — "events are processed sequentially, first-in first-out".
"""

from __future__ import annotations

import socket
import socketserver
import threading
from dataclasses import dataclass

from repro.core.engine import BlueprintEngine
from repro.network.bus import EventBus


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "_TCPServer" = self.server  # type: ignore[assignment]
        while True:
            raw = self.rfile.readline()
            if not raw:
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            with server.lock:
                response = server.bus.handle_line(line)
            self.wfile.write((response + "\n").encode("utf-8"))
            if response == "BYE":
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], bus: EventBus) -> None:
        super().__init__(address, _Handler)
        self.bus = bus
        self.lock = threading.Lock()


@dataclass
class ProjectServer:
    """Lifecycle wrapper: start/stop a threaded project server.

    Usage::

        server = ProjectServer(engine).start()
        ... clients connect to ("127.0.0.1", server.port) ...
        server.stop()
    """

    engine: BlueprintEngine
    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port

    def __post_init__(self) -> None:
        self._server: _TCPServer | None = None
        self._thread: threading.Thread | None = None
        self.bus = EventBus(self.engine)

    def start(self) -> "ProjectServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = _TCPServer((self.host, self.port), self.bus)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="blueprint-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._server = None
        self._thread = None

    def __enter__(self) -> "ProjectServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)


def server_main(argv: list[str] | None = None) -> int:
    """CLI entry point: serve a blueprint file over TCP.

    Usage: ``blueprintd BLUEPRINT_FILE [--port N] [--db DB_JSON]``
    """
    import argparse

    from repro.core.blueprint import Blueprint
    from repro.metadb.database import MetaDatabase
    from repro.metadb.persistence import load_database

    parser = argparse.ArgumentParser(
        prog="blueprintd", description="DAMOCLES project BluePrint server"
    )
    parser.add_argument("blueprint", help="path to the blueprint rule file")
    parser.add_argument("--port", type=int, default=7865)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--db", help="optional JSON meta-database to load")
    args = parser.parse_args(argv)

    blueprint = Blueprint.from_file(args.blueprint)
    if args.db:
        db, _registry = load_database(args.db)
    else:
        db = MetaDatabase()
    engine = BlueprintEngine(db, blueprint)
    server = ProjectServer(engine, host=args.host, port=args.port).start()
    print(f"blueprintd: serving {blueprint.name!r} on {server.host}:{server.port}")
    try:
        while True:
            threading.Event().wait(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def wait_for_port(host: str, port: int, timeout: float = 5.0) -> bool:
    """Poll until a TCP port accepts connections (test helper)."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=0.2):
                return True
        except OSError:
            time.sleep(0.02)
    return False
