"""Write-ahead event journal for the project server.

:mod:`repro.core.journal` proves that replaying recorded external
inputs deterministically reconstructs database state; this module turns
that property into crash safety.  The server appends every admitted
``postEvent`` / ``batch`` here — fsync'd, *before* the wave runs — so a
process killed mid-wave loses nothing: on restart, entries past the
database's durable watermark (``db.wal_seq``) replay through the same
engine and land in the identical state.

Layout: ``PATH`` is a directory of JSON-lines segments plus a
checkpoint marker::

    PATH/
      wal-00000001.jsonl   # entries 1..N (JournalEntry wire format)
      wal-00000513.jsonl   # entries 513.. (current tail segment)
      CHECKPOINT           # {"seq": 512} — entries <= 512 are in the DB

Durability rules, in order:

1. an append writes the line, flushes, and waits for a ``fsync``
   barrier covering its entry before returning — an ``OK`` response to
   a client implies the event is on disk.  The barrier is *group
   commit*: one thread fsyncs on behalf of every append that landed
   since the previous barrier, so concurrent writers share the disk
   wait instead of queueing one fsync each;
2. a checkpoint first persists the database (which carries ``wal_seq``
   in the same save/flush transaction), then replaces ``CHECKPOINT``
   atomically, then deletes fully-covered segments — a crash between
   any two steps leaves a journal that is at worst *longer* than
   needed, never shorter;
3. recovery tolerates exactly one torn line at the very tail of the
   newest segment (the crash landed mid-append; the entry was never
   acknowledged) and truncates it; corruption anywhere else fails
   loudly.

Named crash points (armed only by the fault-injection harness, see
:mod:`repro.testing.faults`): ``mid-journal-append`` between the two
halves of a line write, ``post-journal-append`` after the fsync.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.events import EventMessage
from repro.core.journal import (
    JournalEntry,
    JournalError,
    event_payload,
    payload_event,
)
from repro.testing.faults import crash_point

__all__ = [
    "WalError",
    "WriteAheadLog",
    "event_payload",
    "payload_event",
]

CHECKPOINT_NAME = "CHECKPOINT"
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".jsonl"

#: Data barrier for segment writes.  ``fdatasync`` skips flushing
#: unchanged inode metadata (mtime) but still commits the data and the
#: size change an append implies — measurably cheaper per barrier on
#: ext4, identical durability for a pure-append file.  Falls back to
#: ``fsync`` where unavailable.
_sync_file = getattr(os, "fdatasync", os.fsync)

#: Rotate the tail segment once it holds this many entries, so
#: checkpoints can truncate in bounded pieces.
DEFAULT_SEGMENT_ENTRIES = 1024


class WalError(JournalError):
    """Unrecoverable journal damage (corruption away from the tail)."""


def _segment_name(first_seq: int) -> str:
    return f"{SEGMENT_PREFIX}{first_seq:08d}{SEGMENT_SUFFIX}"


def _segment_first_seq(path: Path) -> int:
    stem = path.name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError as exc:
        raise WalError(f"bad segment name {path.name!r}") from exc


def _fsync_dir(path: Path) -> None:
    """Make a directory entry change (create/rename/unlink) durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fsync; best effort
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadLog:
    """Segmented, fsync'd, checkpointable journal of admitted commands.

    Entry kinds: ``event`` (one ``postEvent``), ``batch`` (one atomic
    ``batch`` command, kept as a single entry so replay reproduces batch
    semantics — including the all-or-nothing error path — exactly),
    ``policy`` (a governed-policy lifecycle command: propose / approve /
    rollback specs, journaled so crash recovery reconstructs governance
    state), and ``audit`` (a deny tombstone referencing an earlier
    entry's seq — how a non-deterministic ``policy_fault`` denial
    replays faithfully).
    """

    def __init__(
        self,
        path: Path | str,
        *,
        fsync: bool = True,
        segment_entries: int = DEFAULT_SEGMENT_ENTRIES,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.segment_entries = max(1, segment_entries)
        self._lock = threading.Lock()
        self._handle = None
        self._segment_path: Path | None = None
        self._segment_count = 0
        self._entries_in_segment = 0
        self.last_seq = 0
        self.checkpoint_seq = 0
        self.recovered_torn_line = False
        #: Disk barriers actually issued (group-commit amortisation
        #: gauge: compare against entries appended to see the fan-in).
        self.sync_barriers = 0
        # Group-commit state: appends write+flush under ``_lock`` (fast),
        # then wait in :meth:`sync` for a disk barrier covering their
        # entry.  One thread fsyncs on everyone's behalf while later
        # appends keep flowing — concurrent writers amortise the barrier,
        # which is the difference between durability costing one fsync
        # per event and one fsync per *burst*.
        self._sync_cond = threading.Condition()
        self._durable_seq = 0
        self._sync_inflight = False
        self._rotating = False
        self._broken = False
        self.path.mkdir(parents=True, exist_ok=True)
        self._recover()
        self._durable_seq = self.last_seq

    # ------------------------------------------------------------------
    # open / recovery
    # ------------------------------------------------------------------

    def _segments(self) -> list[Path]:
        return sorted(
            (
                child
                for child in self.path.iterdir()
                if child.name.startswith(SEGMENT_PREFIX)
                and child.name.endswith(SEGMENT_SUFFIX)
            ),
            key=_segment_first_seq,
        )

    def _recover(self) -> None:
        marker = self.path / CHECKPOINT_NAME
        if marker.exists():
            try:
                self.checkpoint_seq = int(json.loads(marker.read_text())["seq"])
            except (ValueError, KeyError, json.JSONDecodeError) as exc:
                raise WalError(f"corrupt checkpoint marker {marker}: {exc}") from exc
        segments = self._segments()
        self.last_seq = self.checkpoint_seq
        tail_entries = 0
        expected_next: int | None = None
        for index, segment in enumerate(segments):
            is_tail = index == len(segments) - 1
            first_seq = _segment_first_seq(segment)
            if expected_next is not None and first_seq != expected_next:
                # A whole segment (or its tail lines) vanished: the next
                # segment's name proves entries are missing.  Unlike a
                # torn final line this CAN cover acknowledged events, so
                # it must fail loudly, never silently skip.
                raise WalError(
                    f"journal gap: {segment.name} starts at seq {first_seq}, "
                    f"expected {expected_next}"
                )
            last, count = self._scan_segment(
                segment, first_seq=first_seq, repair_tail=is_tail
            )
            expected_next = first_seq + count
            if last is not None:
                self.last_seq = max(self.last_seq, last)
            if is_tail:
                tail_entries = count
        self._segment_count = len(segments)
        if segments:
            self._open_segment(segments[-1])
            self._entries_in_segment = tail_entries

    def _scan_segment(
        self, segment: Path, *, first_seq: int, repair_tail: bool
    ) -> tuple[int | None, int]:
        """Validate one segment; returns (last seq, entry count).

        Entries must run contiguously from *first_seq* (the sequence
        number the segment's own name promises).  On the newest segment
        only, a single unparseable *final* line is treated as a torn
        append — the crash landed mid-write, the entry was never
        acknowledged — and truncated away.  Anything else raises
        :class:`WalError`.
        """
        raw = segment.read_bytes()
        good_end = 0
        last_seq: int | None = None
        count = 0
        position = 0
        while position < len(raw):
            newline = raw.find(b"\n", position)
            if newline < 0:
                break  # unterminated tail
            line = raw[position:newline].decode("utf-8", errors="replace")
            try:
                entry = JournalEntry.from_json(line)
            except JournalError:
                break
            if entry.seq != first_seq + count:
                raise WalError(
                    f"journal gap in {segment.name}: entry {count} has "
                    f"seq {entry.seq}, expected {first_seq + count}"
                )
            last_seq = entry.seq
            count += 1
            good_end = newline + 1
            position = newline + 1
        if good_end < len(raw):
            if not repair_tail:
                raise WalError(
                    f"corrupt journal segment {segment.name} at byte {good_end}"
                )
            with open(segment, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
            self.recovered_torn_line = True
        return last_seq, count

    def _open_segment(self, segment: Path) -> None:
        self._close_handle()
        self._segment_path = segment
        self._handle = open(segment, "ab")

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._segment_path = None

    # ------------------------------------------------------------------
    # append
    # ------------------------------------------------------------------

    def append_event(self, event: EventMessage, *, sync: bool = True) -> JournalEntry:
        """Record one admitted ``postEvent``; durable before returning
        unless ``sync=False`` (caller promises a later :meth:`sync`
        before acknowledging the event to anyone)."""
        return self._append("event", event_payload(event), sync=sync)

    def append_batch(
        self, events: Iterable[EventMessage], *, sync: bool = True
    ) -> JournalEntry:
        """Record one admitted ``batch`` as a single entry."""
        payload = {"events": [event_payload(event) for event in events]}
        return self._append("batch", payload, sync=sync)

    def append_policy(
        self, action: str, spec: dict, *, sync: bool = True
    ) -> JournalEntry:
        """Record one admitted policy lifecycle command (its spec, not
        its outcome — replay re-derives the outcome deterministically)."""
        return self._append("policy", {"action": action, "spec": spec}, sync=sync)

    def append_audit(
        self,
        ref: int,
        denied: list[tuple[int, str]],
        *,
        sync: bool = True,
    ) -> JournalEntry:
        """Record a deny tombstone for entry *ref*.

        ``denied`` lists ``(member index, reason)`` pairs — index 0 for a
        plain ``postEvent``.  The tombstone is fsync'd before the DENY
        response goes out, so a replayer can never resurrect (grant) a
        decision the live server refused.
        """
        payload = {
            "ref": ref,
            "denied": [[index, reason] for index, reason in denied],
        }
        return self._append("audit", payload, sync=sync)

    def _append(self, kind: str, payload: dict, *, sync: bool = True) -> JournalEntry:
        with self._lock:
            if self._broken:
                raise WalError(
                    "journal is broken (earlier write or fsync failed); "
                    "refusing to append"
                )
            self._maybe_rotate()
            entry = JournalEntry(seq=self.last_seq + 1, kind=kind, payload=payload)
            data = (entry.to_json() + "\n").encode("utf-8")
            handle = self._handle
            assert handle is not None
            try:
                # The write is split — and the first half pushed past
                # Python's buffer — so an armed mid-journal-append crash
                # point produces a genuinely torn line on disk, not a
                # cleanly absent one.
                half = max(1, len(data) // 2)
                handle.write(data[:half])
                handle.flush()
                crash_point("mid-journal-append")
                handle.write(data[half:])
                handle.flush()
            except (OSError, ValueError) as exc:  # ValueError: closed file
                # The buffered handle may have emitted a partial line that
                # cannot be rolled back; everything after it would read as
                # corruption, so the journal stops accepting writes.
                self._mark_broken()
                raise WalError(f"journal append failed: {exc}") from exc
            self.last_seq = entry.seq
            self._entries_in_segment += 1
        if sync:
            self.sync(entry.seq)
        crash_point("post-journal-append")
        return entry

    def sync(self, seq: int) -> None:
        """Block until entries ``<= seq`` are on disk (group commit).

        Concurrent callers piggyback: while one thread runs the fsync,
        later appends keep landing in the OS buffer, and the *next*
        barrier covers them all at once.  Callers whose entry was already
        covered by someone else's barrier return without touching disk.
        """
        if not self.fsync:
            return
        with self._sync_cond:
            while True:
                if self._broken:
                    raise WalError("journal is broken; entry not durable")
                if self._durable_seq >= seq:
                    return
                if not self._sync_inflight and not self._rotating:
                    break
                self._sync_cond.wait()
            self._sync_inflight = True
            # Safe to read outside ``_lock``: appends publish ``last_seq``
            # only after the full line is flushed, and rotation cannot
            # swap the handle while a sync is inflight.
            handle = self._handle
            target = self.last_seq
        error: Exception | None = None
        try:
            if handle is not None:
                self.sync_barriers += 1
                _sync_file(handle.fileno())
        except (OSError, ValueError) as exc:  # ValueError: closed file
            error = exc
        with self._sync_cond:
            self._sync_inflight = False
            if error is None:
                self._durable_seq = max(self._durable_seq, target)
            else:
                self._broken = True
            self._sync_cond.notify_all()
        if error is not None:
            raise WalError(f"journal fsync failed: {error}") from error
        if self._broken:
            raise WalError("journal is broken; entry not durable")

    def _mark_broken(self) -> None:
        self._broken = True
        with self._sync_cond:
            self._sync_cond.notify_all()

    @property
    def broken(self) -> bool:
        """True once a write or fsync has failed; appends are refused."""
        return self._broken

    @property
    def durable_seq(self) -> int:
        return self._durable_seq if self.fsync else self.last_seq

    def _maybe_rotate(self) -> None:
        if self._handle is None:
            self._start_segment(self.last_seq + 1)
        elif self._entries_in_segment >= self.segment_entries:
            self._start_segment(self.last_seq + 1)

    def _seal_segment(self) -> None:
        """Barrier the open segment before it is closed (rotation/close).

        Waits out any inflight group fsync (so the handle is not pulled
        from under it), then flushes + fsyncs so every entry in a closed
        segment is durable — rotation must never weaken rule 1.  Caller
        holds ``_lock``.
        """
        handle = self._handle
        if handle is None:
            return
        with self._sync_cond:
            while self._sync_inflight:
                self._sync_cond.wait()
            self._rotating = True
        try:
            handle.flush()
            if self.fsync:
                self.sync_barriers += 1
                _sync_file(handle.fileno())
        except (OSError, ValueError) as exc:  # ValueError: closed file
            self._mark_broken()
            raise WalError(f"journal rotation fsync failed: {exc}") from exc
        finally:
            with self._sync_cond:
                self._rotating = False
                if not self._broken:
                    self._durable_seq = max(self._durable_seq, self.last_seq)
                self._sync_cond.notify_all()

    def _start_segment(self, first_seq: int) -> None:
        if self._handle is not None:
            self._seal_segment()
        self._close_handle()
        segment = self.path / _segment_name(first_seq)
        self._segment_path = segment
        self._handle = open(segment, "ab")
        self._entries_in_segment = 0
        self._segment_count += 1
        _fsync_dir(self.path)

    # ------------------------------------------------------------------
    # read / replay
    # ------------------------------------------------------------------

    def entries(self) -> Iterator[JournalEntry]:
        """Every entry in seq order (validated segments only)."""
        for segment in self._segments():
            for line in segment.read_text().splitlines():
                if line.strip():
                    yield JournalEntry.from_json(line)

    def entries_after(self, seq: int) -> Iterator[JournalEntry]:
        """Entries with ``entry.seq > seq`` — the recovery tail.

        Segments whose name proves they end at or before *seq* are
        skipped without being read.
        """
        segments = self._segments()
        for index, segment in enumerate(segments):
            next_first = (
                _segment_first_seq(segments[index + 1])
                if index + 1 < len(segments)
                else None
            )
            if next_first is not None and next_first - 1 <= seq:
                continue  # entire segment is at or below the watermark
            for line in segment.read_text().splitlines():
                if not line.strip():
                    continue
                entry = JournalEntry.from_json(line)
                if entry.seq > seq:
                    yield entry

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    @property
    def lag(self) -> int:
        """Entries admitted but not yet covered by a checkpoint."""
        return self.last_seq - self.checkpoint_seq

    @property
    def segment_count(self) -> int:
        return self._segment_count

    # ------------------------------------------------------------------
    # checkpoint / truncation
    # ------------------------------------------------------------------

    def checkpoint(self, seq: int) -> int:
        """Record that entries ``<= seq`` are durable in the database.

        Replaces the ``CHECKPOINT`` marker atomically, then deletes
        segments every entry of which is covered.  Returns the number of
        segments truncated.  MUST only be called after the database save
        carrying ``wal_seq = seq`` has committed — the caller owns that
        ordering (see ``damocles serve``).
        """
        with self._lock:
            seq = min(seq, self.last_seq)
            if seq < self.checkpoint_seq:
                return 0
            marker = self.path / CHECKPOINT_NAME
            tmp = self.path / (CHECKPOINT_NAME + ".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"seq": seq}, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, marker)
            _fsync_dir(self.path)
            self.checkpoint_seq = seq
            # Rotate the tail away if it is fully covered, so it too can
            # be deleted and the journal stays bounded.
            if (
                self._handle is not None
                and self._entries_in_segment > 0
                and self.last_seq <= seq
            ):
                self._start_segment(self.last_seq + 1)
            removed = 0
            segments = self._segments()
            for index, segment in enumerate(segments):
                if segment == self._segment_path:
                    continue  # never unlink the open tail
                next_first = (
                    _segment_first_seq(segments[index + 1])
                    if index + 1 < len(segments)
                    else self.last_seq + 1
                )
                if next_first - 1 <= seq:
                    segment.unlink()
                    removed += 1
            if removed:
                self._segment_count -= removed
                _fsync_dir(self.path)
            return removed

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._broken:
                try:
                    self._seal_segment()
                except WalError:
                    pass  # shutdown: nothing left to protect
            self._close_handle()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
