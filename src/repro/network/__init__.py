"""Event transport: the ``postEvent`` wire protocol, an in-process bus
and a localhost TCP project server (Figure 1's network path)."""

from repro.network.bus import EventBus
from repro.network.client import BlueprintClient, ClientError, post_event_main
from repro.network.protocol import (
    Command,
    ProtocolError,
    err_response,
    format_post_event,
    format_query_response,
    ok_response,
    parse_command,
    parse_post_event,
)
from repro.network.server import ProjectServer, server_main, wait_for_port

__all__ = [
    "EventBus",
    "BlueprintClient",
    "ClientError",
    "post_event_main",
    "Command",
    "ProtocolError",
    "format_post_event",
    "parse_post_event",
    "parse_command",
    "ok_response",
    "err_response",
    "format_query_response",
    "ProjectServer",
    "server_main",
    "wait_for_port",
]
