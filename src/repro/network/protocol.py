"""The ``postEvent`` wire protocol.

Design activities "transmit information ... to the BluePrint by sending
events through the computer network" (section 1).  The wire format is the
paper's wrapper-script command::

    postEvent ckin up reg,verilog,4 "logic sim passed"

i.e. ``postEvent EVENT up|down BLOCK,VIEW,VERSION ["ARG"]``.  The project
server speaks a line-oriented dialect around it:

* ``postEvent ...``  → ``OK <seq>`` or ``ERR <reason>``
* ``query BLOCK,VIEW,VERSION``  → ``OK <prop>=<value> ...`` or ``ERR ...``
* ``ping``  → ``PONG``
* ``quit``  → closes the connection

All messages are UTF-8 lines terminated by ``\\n``.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass

from repro.core.events import EventMessage
from repro.metadb.links import Direction
from repro.metadb.oid import OID


class ProtocolError(ValueError):
    """A malformed wire line."""


POST_EVENT = "postEvent"
QUERY = "query"
PING = "ping"
QUIT = "quit"


def format_post_event(event: EventMessage) -> str:
    """Render *event* as a ``postEvent`` line."""
    line = f"{POST_EVENT} {event.name} {event.direction.value} {event.target.wire()}"
    if event.arg:
        escaped = event.arg.replace("\\", "\\\\").replace('"', '\\"')
        line += f' "{escaped}"'
    if event.user:
        escaped = event.user.replace("\\", "\\\\").replace('"', '\\"')
        if not event.arg:
            line += ' ""'
        line += f' "{escaped}"'
    return line


def parse_post_event(line: str) -> EventMessage:
    """Parse a ``postEvent`` line into an :class:`EventMessage`.

    Raises :class:`ProtocolError` with a human-readable reason; the
    server relays it verbatim in the ``ERR`` response.
    """
    try:
        parts = shlex.split(line)
    except ValueError as exc:
        raise ProtocolError(f"bad quoting: {exc}") from exc
    if not parts or parts[0] != POST_EVENT:
        raise ProtocolError(f"expected '{POST_EVENT}', got {line!r}")
    if len(parts) < 4:
        raise ProtocolError(
            "usage: postEvent EVENT up|down BLOCK,VIEW,VERSION [\"ARG\"] [\"USER\"]"
        )
    name = parts[1]
    try:
        direction = Direction.parse(parts[2])
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    try:
        target = OID.parse(parts[3])
    except Exception as exc:
        raise ProtocolError(f"bad OID {parts[3]!r}: {exc}") from exc
    arg = parts[4] if len(parts) > 4 else ""
    user = parts[5] if len(parts) > 5 else ""
    if len(parts) > 6:
        raise ProtocolError(f"trailing junk after user: {parts[6:]!r}")
    try:
        return EventMessage(
            name=name, direction=direction, target=target, arg=arg, user=user
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


@dataclass(frozen=True)
class Command:
    """One parsed server command."""

    kind: str  # "post" | "query" | "ping" | "quit"
    event: EventMessage | None = None
    oid: OID | None = None


def parse_command(line: str) -> Command:
    """Parse any server-dialect line."""
    stripped = line.strip()
    if not stripped:
        raise ProtocolError("empty command")
    head = stripped.split(None, 1)[0]
    if head == POST_EVENT:
        return Command(kind="post", event=parse_post_event(stripped))
    if head == QUERY:
        parts = stripped.split()
        if len(parts) != 2:
            raise ProtocolError("usage: query BLOCK,VIEW,VERSION")
        try:
            return Command(kind="query", oid=OID.parse(parts[1]))
        except Exception as exc:
            raise ProtocolError(f"bad OID {parts[1]!r}: {exc}") from exc
    if head == PING:
        return Command(kind="ping")
    if head == QUIT:
        return Command(kind="quit")
    raise ProtocolError(f"unknown command {head!r}")


def ok_response(detail: str = "") -> str:
    return f"OK {detail}".rstrip()


def err_response(reason: str) -> str:
    return "ERR " + reason.replace("\n", " ")


def format_query_response(properties: dict[str, object]) -> str:
    from repro.metadb.properties import value_to_text

    rendered = " ".join(
        f"{name}={value_to_text(value)}"  # type: ignore[arg-type]
        for name, value in sorted(properties.items())
    )
    return ok_response(rendered)
