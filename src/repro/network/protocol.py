"""The ``postEvent`` wire protocol.

Design activities "transmit information ... to the BluePrint by sending
events through the computer network" (section 1).  The wire format is the
paper's wrapper-script command::

    postEvent ckin up reg,verilog,4 "logic sim passed"

i.e. ``postEvent EVENT up|down BLOCK,VIEW,VERSION ["ARG"]``.  The project
server speaks a line-oriented dialect around it:

* ``postEvent ...``  → ``OK <seq>`` or ``ERR <reason>``
* ``batch "postEvent ..." "postEvent ..."``  → ``OK <seq> <seq> ...``
  (atomic: every event validated before any is posted)
* ``query BLOCK,VIEW,VERSION``  → ``OK <prop>=<value> ...`` or ``ERR ...``
  (values shlex-quoted so embedded whitespace round-trips)
* ``stale``  → ``OK <oid> <oid> ...`` straight from the incremental
  stale set (O(result), no scan)
* ``pending``  → ``OK <oid>:<check>+<check> ...`` — what still blocks
  the planned state, per the query planner
* ``status``  → ``OK <counter>=<n> ...`` server/engine counters
* ``health``  → ``OK <gauge>=<n> ...`` durability/backpressure gauges
  (journal lag, writer backlog, lock waits) — answered lock-free so it
  works even while the server is wedged under load
* ``subscribe``  → ``OK subscribed``; the connection then receives
  ``STALE <oid>`` / ``FRESH <oid>`` push lines as waves re-bucket objects
* ``policy status``  → ``OK <field>=<value> ...`` — governed-policy
  snapshot (version, change class, content hash, pending proposal)
* ``policy propose CLASS OP [ARGS...]``  → ``OK <version> <state>`` —
  propose a revision (``loosen EVENTS`` | ``require TOOL COND [VIEW]``
  | ``drop TOOL COND [VIEW]``); additive revisions auto-activate,
  breaking ones park pending
* ``policy approve VERSION``  → ``OK <version> active`` — activate the
  pending breaking proposal
* ``policy rollback``  → ``OK <version> active`` — restore the previous
  version's content as a new version
* ``audit [N]``  → ``OK <record> ...`` — the allow/deny audit tail
  (each record one shlex-quoted JSON token)
* ``ping``  → ``PONG``
* ``quit``  → closes the connection

When the writer backlog exceeds the server's bound, ``postEvent`` /
``batch`` are rejected with ``ERR busy: retry after <seconds>s``
instead of queueing without limit; a rejected event was *not* admitted,
so retrying it is always safe (:func:`parse_busy` extracts the hint).

All messages are UTF-8 lines terminated by ``\\n``.  The server applies
a reader-writer lock discipline per command kind: :data:`LOCK_EXCLUSIVE`
kinds mutate the engine and enqueue FIFO behind one writer lock,
:data:`LOCK_SHARED` kinds scan the database under a shared read lock,
and everything else answers from GIL-atomic snapshots with no lock at
all (so they complete even while a wave is running).
"""

from __future__ import annotations

import json
import re
import shlex
from dataclasses import dataclass

from repro.core.events import EventMessage
from repro.metadb.links import Direction
from repro.metadb.oid import OID


class ProtocolError(ValueError):
    """A malformed wire line."""


POST_EVENT = "postEvent"
QUERY = "query"
PING = "ping"
QUIT = "quit"
STALE = "stale"
PENDING = "pending"
STATUS = "status"
HEALTH = "health"
SUBSCRIBE = "subscribe"
BATCH = "batch"
POLICY = "policy"
AUDIT = "audit"

#: Notification verbs pushed to subscribed connections.
NOTIFY_STALE = "STALE"
NOTIFY_FRESH = "FRESH"

#: Final line a line-dialect server writes to a subscriber it is about
#: to drop for overflow — overload is thereby distinguishable from a
#: crashed server on the client side.  (The framed transport never
#: drops slow subscribers; it coalesces instead.)
OVERLOAD_LINE = "ERR overloaded"

#: Policy lifecycle commands: journaled writes, serialized with posts
#: through the same writer lock / group-commit path so a propose and an
#: approve racing each other resolve in journal order.
POLICY_WRITES = frozenset({"policy_propose", "policy_approve", "policy_rollback"})

#: Command kinds that mutate engine state: the server runs them under
#: the exclusive writer lock, so posts from many clients enqueue FIFO.
LOCK_EXCLUSIVE = frozenset({"post", "batch"}) | POLICY_WRITES

#: Command kinds that scan the database (lineage walks, expression
#: evaluation): the server runs them under the shared reader lock.
LOCK_SHARED = frozenset({"pending"})


def _flatten(text: str) -> str:
    """Degrade newlines to spaces: line framing cannot carry them, and
    a raw newline inside a quoted field would desynchronise a persistent
    connection (the server reads one fragment, the client pairs the next
    command with a stale buffered response)."""
    return text.replace("\r\n", " ").replace("\n", " ").replace("\r", " ")


def format_post_event(event: EventMessage) -> str:
    """Render *event* as a ``postEvent`` line.

    The event name is shlex-quoted: plain names (every name the paper
    uses) stay bare, but a name carrying shell metacharacters still
    re-parses to itself.  Newlines in any field degrade to spaces (the
    same rule every response formatter applies).
    """
    name = shlex.quote(_flatten(event.name))
    line = f"{POST_EVENT} {name} {event.direction.value} {event.target.wire()}"
    if event.arg:
        escaped = _flatten(event.arg).replace("\\", "\\\\").replace('"', '\\"')
        line += f' "{escaped}"'
    if event.user:
        escaped = _flatten(event.user).replace("\\", "\\\\").replace('"', '\\"')
        if not event.arg:
            line += ' ""'
        line += f' "{escaped}"'
    return line


def parse_post_event(line: str) -> EventMessage:
    """Parse a ``postEvent`` line into an :class:`EventMessage`.

    Raises :class:`ProtocolError` with a human-readable reason; the
    server relays it verbatim in the ``ERR`` response.
    """
    try:
        parts = shlex.split(line)
    except ValueError as exc:
        raise ProtocolError(f"bad quoting: {exc}") from exc
    if not parts or parts[0] != POST_EVENT:
        raise ProtocolError(f"expected '{POST_EVENT}', got {line!r}")
    if len(parts) < 4:
        raise ProtocolError(
            "usage: postEvent EVENT up|down BLOCK,VIEW,VERSION [\"ARG\"] [\"USER\"]"
        )
    name = parts[1]
    try:
        direction = Direction.parse(parts[2])
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    try:
        target = OID.parse(parts[3])
    except Exception as exc:
        raise ProtocolError(f"bad OID {parts[3]!r}: {exc}") from exc
    arg = parts[4] if len(parts) > 4 else ""
    user = parts[5] if len(parts) > 5 else ""
    if len(parts) > 6:
        raise ProtocolError(f"trailing junk after user: {parts[6:]!r}")
    try:
        return EventMessage(
            name=name, direction=direction, target=target, arg=arg, user=user
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def format_batch(events: list[EventMessage]) -> str:
    """Render *events* as one atomic ``batch`` line.

    Each event is a full ``postEvent`` line, shlex-quoted down to a
    single token, so arbitrary args survive the nesting.
    """
    if not events:
        raise ProtocolError("batch of zero events")
    return BATCH + " " + " ".join(
        shlex.quote(format_post_event(event)) for event in events
    )


def parse_batch(line: str) -> tuple[EventMessage, ...]:
    """Parse a ``batch`` line into its member events."""
    try:
        parts = shlex.split(line)
    except ValueError as exc:
        raise ProtocolError(f"bad quoting: {exc}") from exc
    if not parts or parts[0] != BATCH:
        raise ProtocolError(f"expected '{BATCH}', got {line!r}")
    if len(parts) < 2:
        raise ProtocolError('usage: batch "postEvent ..." ["postEvent ..."]')
    return tuple(parse_post_event(sub) for sub in parts[1:])


@dataclass(frozen=True)
class Command:
    """One parsed server command."""

    kind: str  # post | batch | query | stale | pending | status | subscribe | policy_* | audit | ping | quit
    event: EventMessage | None = None
    oid: OID | None = None
    events: tuple[EventMessage, ...] = ()
    args: tuple[str, ...] = ()


def _parse_policy(stripped: str) -> Command:
    """Parse a ``policy`` line into its lifecycle sub-command."""
    try:
        parts = shlex.split(stripped)
    except ValueError as exc:
        raise ProtocolError(f"bad quoting: {exc}") from exc
    usage = "usage: policy status|propose CLASS OP [ARGS...]|approve VERSION|rollback"
    if len(parts) < 2:
        raise ProtocolError(usage)
    sub = parts[1]
    rest = parts[2:]
    if sub == "status":
        if rest:
            raise ProtocolError("'policy status' takes no arguments")
        return Command(kind="policy_status")
    if sub == "propose":
        if len(rest) < 2:
            raise ProtocolError(
                "usage: policy propose additive|breaking "
                "loosen|require|drop [ARGS...]"
            )
        return Command(kind="policy_propose", args=tuple(rest))
    if sub == "approve":
        if len(rest) != 1:
            raise ProtocolError("usage: policy approve VERSION")
        return Command(kind="policy_approve", args=(rest[0],))
    if sub == "rollback":
        if rest:
            raise ProtocolError("'policy rollback' takes no arguments")
        return Command(kind="policy_rollback")
    raise ProtocolError(usage)


def parse_command(line: str) -> Command:
    """Parse any server-dialect line."""
    stripped = line.strip()
    if not stripped:
        raise ProtocolError("empty command")
    head = stripped.split(None, 1)[0]
    if head == POST_EVENT:
        return Command(kind="post", event=parse_post_event(stripped))
    if head == BATCH:
        return Command(kind="batch", events=parse_batch(stripped))
    if head == QUERY:
        parts = stripped.split()
        if len(parts) != 2:
            raise ProtocolError("usage: query BLOCK,VIEW,VERSION")
        try:
            return Command(kind="query", oid=OID.parse(parts[1]))
        except Exception as exc:
            raise ProtocolError(f"bad OID {parts[1]!r}: {exc}") from exc
    if head == POLICY:
        return _parse_policy(stripped)
    if head == AUDIT:
        parts = stripped.split()
        if len(parts) > 2:
            raise ProtocolError("usage: audit [N]")
        if len(parts) == 2:
            if not parts[1].isdigit():
                raise ProtocolError(f"bad audit limit {parts[1]!r}")
            return Command(kind="audit", args=(parts[1],))
        return Command(kind="audit")
    if head in (STALE, PENDING, STATUS, HEALTH, SUBSCRIBE, PING, QUIT):
        if stripped != head:
            raise ProtocolError(f"'{head}' takes no arguments")
        kinds = {
            STALE: "stale",
            PENDING: "pending",
            STATUS: "status",
            HEALTH: "health",
            SUBSCRIBE: "subscribe",
            PING: "ping",
            QUIT: "quit",
        }
        return Command(kind=kinds[head])
    raise ProtocolError(f"unknown command {head!r}")


def ok_response(detail: str = "") -> str:
    return f"OK {detail}".rstrip()


def err_response(reason: str) -> str:
    return "ERR " + reason.replace("\n", " ")


BUSY_PREFIX = "ERR busy"


def busy_response(retry_after: float, detail: str = "") -> str:
    """The backpressure rejection: explicit non-admission plus a hint.

    The event was NOT queued, so the client may retry it — even a
    ``postEvent`` — after roughly *retry_after* seconds.
    """
    suffix = f" ({detail})" if detail else ""
    return f"{BUSY_PREFIX}: retry after {retry_after:g}s{suffix}"


def parse_busy(response: str) -> float | None:
    """Retry-after seconds if *response* is a busy rejection, else None."""
    if not response.startswith(BUSY_PREFIX):
        return None
    match = re.search(r"retry after ([0-9.]+)s", response)
    if match:
        try:
            return float(match.group(1))
        except ValueError:
            pass
    return 0.1


def _wire_token(text: str) -> str:
    """Quote *text* as one whitespace-safe wire token.

    Line framing cannot carry embedded newlines, so they are flattened
    to spaces (the same lossy rule :func:`err_response` applies).
    """
    return shlex.quote(_flatten(text))


def format_query_response(properties: dict[str, object]) -> str:
    """Render a property snapshot, each ``name=value`` shlex-quoted.

    Values containing whitespace (the paper's ``"logic sim passed"``)
    survive the wire: clients re-parse with :func:`parse_query_response`
    (``shlex.split`` under the hood) instead of naive whitespace splits.
    """
    from repro.metadb.properties import value_to_text

    rendered = " ".join(
        _wire_token(f"{name}={value_to_text(value)}")  # type: ignore[arg-type]
        for name, value in sorted(properties.items())
    )
    return ok_response(rendered)


def parse_query_response(body: str) -> dict[str, str]:
    """Parse the body of a ``query`` response back into text properties."""
    try:
        chunks = shlex.split(body)
    except ValueError as exc:
        raise ProtocolError(f"bad quoting in query response: {exc}") from exc
    properties: dict[str, str] = {}
    for chunk in chunks:
        name, sep, value = chunk.partition("=")
        if sep:
            properties[name] = value
    return properties


def format_stale_response(oids: list[OID]) -> str:
    """Render the stale set as sorted wire OIDs (no quoting needed:
    OIDs cannot contain whitespace)."""
    return ok_response(
        " ".join(oid.wire() for oid in sorted(oids, key=OID.sort_key))
    )


def parse_stale_response(body: str) -> list[OID]:
    try:
        return [OID.parse(token) for token in body.split()]
    except Exception as exc:
        raise ProtocolError(f"bad OID in stale response: {exc}") from exc


def format_pending_response(items: list[tuple[OID, tuple[str, ...]]]) -> str:
    """Render pending work as ``OID:check+check`` tokens."""
    rendered = " ".join(
        _wire_token(f"{oid.wire()}:{'+'.join(failing)}")
        for oid, failing in items
    )
    return ok_response(rendered)


def parse_pending_response(body: str) -> dict[OID, tuple[str, ...]]:
    try:
        chunks = shlex.split(body)
    except ValueError as exc:
        raise ProtocolError(f"bad quoting in pending response: {exc}") from exc
    pending: dict[OID, tuple[str, ...]] = {}
    for chunk in chunks:
        wire, sep, checks = chunk.partition(":")
        if not sep:
            raise ProtocolError(f"bad pending token {chunk!r}")
        try:
            oid = OID.parse(wire)
        except Exception as exc:
            raise ProtocolError(f"bad OID {wire!r}: {exc}") from exc
        pending[oid] = tuple(part for part in checks.split("+") if part)
    return pending


def format_status_response(counters: dict[str, int]) -> str:
    """Render server/engine counters as ``name=value`` tokens."""
    rendered = " ".join(
        f"{name}={value}" for name, value in sorted(counters.items())
    )
    return ok_response(rendered)


def parse_status_response(body: str) -> dict[str, int]:
    counters: dict[str, int] = {}
    for chunk in body.split():
        name, sep, value = chunk.partition("=")
        if sep:
            try:
                counters[name] = int(value)
            except ValueError as exc:
                raise ProtocolError(f"bad counter {chunk!r}") from exc
    return counters


def format_policy_propose(
    change_class: str, op: str, args: tuple[str, ...] | list[str]
) -> str:
    """Render a ``policy propose`` line, each argument shlex-quoted
    (permission conditions contain spaces and ``$`` sigils)."""
    tokens = [POLICY, "propose", _wire_token(change_class), _wire_token(op)]
    tokens.extend(_wire_token(str(arg)) for arg in args)
    return " ".join(tokens)


def format_policy_status(fields: list[tuple[str, str]]) -> str:
    """Render the governed-policy snapshot as quoted ``name=value``
    tokens (same discipline as ``query``; clients re-parse with
    :func:`parse_query_response`)."""
    rendered = " ".join(
        _wire_token(f"{name}={value}") for name, value in fields
    )
    return ok_response(rendered)


def format_audit_response(records: list[dict]) -> str:
    """Render audit records, one shlex-quoted JSON object per token.

    Takes plain payload dicts (see ``AuditRecord.to_payload``) so the
    protocol layer stays ignorant of the policy layer's types.
    """
    rendered = " ".join(
        _wire_token(json.dumps(record, sort_keys=True, separators=(",", ":")))
        for record in records
    )
    return ok_response(rendered)


def parse_audit_response(body: str) -> list[dict]:
    """Parse an ``audit`` response body back into record payloads."""
    try:
        chunks = shlex.split(body)
    except ValueError as exc:
        raise ProtocolError(f"bad quoting in audit response: {exc}") from exc
    records: list[dict] = []
    for chunk in chunks:
        try:
            payload = json.loads(chunk)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"bad audit record {chunk!r}: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError(f"bad audit record {chunk!r}: not an object")
        records.append(payload)
    return records


def format_notification(oid: OID, is_stale: bool) -> str:
    """One push line: ``STALE <oid>`` when it entered the stale set,
    ``FRESH <oid>`` when it left."""
    verb = NOTIFY_STALE if is_stale else NOTIFY_FRESH
    return f"{verb} {oid.wire()}"


def parse_notification(line: str) -> tuple[str, OID]:
    """Parse a push line into ``(verb, oid)``."""
    parts = line.split()
    if len(parts) != 2 or parts[0] not in (NOTIFY_STALE, NOTIFY_FRESH):
        raise ProtocolError(f"bad notification {line!r}")
    try:
        return parts[0], OID.parse(parts[1])
    except Exception as exc:
        raise ProtocolError(f"bad OID in notification {line!r}: {exc}") from exc
