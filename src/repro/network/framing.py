"""Length-prefixed binary framing for the async project server.

The line dialect of :mod:`repro.network.protocol` is what the paper's
wrapper scripts speak, and it stays the compat transport — but a line
protocol cannot multiplex: one connection carries one in-flight request,
so every event pays a full round trip and a slow response head-of-line
blocks everything behind it.  This module defines the framed transport
that removes both limits:

* every frame is ``MAGIC | u32 length | JSON payload`` — five bytes of
  header, then exactly ``length`` bytes of UTF-8 JSON;
* the magic byte doubles as the protocol version (``0xB0 | version``)
  and as transport auto-detection: no line-dialect command starts with
  a byte ≥ 0x80, so the server classifies each connection from its
  first byte and speaks lines or frames accordingly;
* a length guard (:data:`MAX_FRAME`) bounds what a peer can make the
  other side buffer — an oversized header is a protocol error, not an
  allocation;
* requests carry a client-chosen ``id`` tag and responses echo it, so
  many requests can be in flight on one connection and complete out of
  order (multiplexing); push notifications and credit frames carry no
  ``id`` at all.

Payload shapes (all JSON objects):

* request:  ``{"id": 7, "cmd": "post", "event": {...}}`` — command
  names and argument shapes mirror the line dialect (see
  :func:`request_to_command`);
* response: ``{"id": 7, "response": "OK 12"}`` — the body is the same
  ``OK ... / ERR ...`` line the line dialect would answer, so every
  existing response parser (and the retry matrix built on them) works
  unchanged over frames;
* push:     ``{"push": "STALE a,v,1"}`` with optional
  ``"coalesced": true`` when the notification is a catch-up delta
  rather than a live transition;
* credit:   ``{"credit": "PAUSE"}`` / ``{"credit": "RESUME"}`` — flow
  control for the push stream, sent by the server when it starts/stops
  coalescing a slow subscriber, and by the client to explicitly pause
  its own stream.

The decoder is incremental: bytes arrive in arbitrary chunks (torn
mid-header or mid-payload) and complete frames come out.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Iterator

from repro.core.events import EventMessage
from repro.metadb.oid import OID
from repro.network.protocol import Command, ProtocolError, parse_post_event

#: Protocol version carried in the low nibble of the magic byte.
FRAME_VERSION = 1

#: First byte of every frame: ``0xB0 | version``.  High bit set, so it
#: can never be the first byte of a UTF-8 line-dialect command — the
#: server's transport auto-detection keys on exactly this.
FRAME_MAGIC = 0xB0 | FRAME_VERSION

#: Any byte in this family announces "framed transport" (some version).
MAGIC_FAMILY_MASK = 0xF0
MAGIC_FAMILY = 0xB0

#: Hard bound on one frame's payload, encoder and decoder alike.  Large
#: enough for a several-thousand-event batch, small enough that a
#: corrupt or hostile length header cannot make a peer buffer gigabytes.
MAX_FRAME = 1 << 20  # 1 MiB

_HEADER = struct.Struct(">BI")  # magic byte, payload length


class FramingError(ProtocolError):
    """A malformed, oversized, or wrong-version frame."""


def is_frame_byte(first: int) -> bool:
    """True when *first* announces the framed transport (any version)."""
    return (first & MAGIC_FAMILY_MASK) == MAGIC_FAMILY


def encode_frame(payload: dict) -> bytes:
    """Render one payload as a complete wire frame."""
    data = json.dumps(payload, separators=(",", ":"), ensure_ascii=False).encode(
        "utf-8"
    )
    if len(data) > MAX_FRAME:
        raise FramingError(
            f"frame payload of {len(data)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _HEADER.pack(FRAME_MAGIC, len(data)) + data


class FrameDecoder:
    """Incremental frame parser: feed bytes, iterate complete payloads.

    Tolerates arbitrary fragmentation — a frame torn mid-header or
    mid-payload simply waits in the buffer for the rest.  Raises
    :class:`FramingError` on a wrong magic/version byte or an oversized
    length header; after an error the stream is unrecoverable (framing
    has no resync point) and the connection should be closed.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held waiting for a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict]:
        """Absorb *data*; return every frame it completed, in order."""
        self._buffer.extend(data)
        return list(self._drain())

    def _drain(self) -> Iterator[dict]:
        while len(self._buffer) >= _HEADER.size:
            magic, length = _HEADER.unpack_from(self._buffer)
            if magic != FRAME_MAGIC:
                if is_frame_byte(magic):
                    raise FramingError(
                        f"frame version mismatch: peer speaks "
                        f"v{magic & ~MAGIC_FAMILY_MASK}, this side v{FRAME_VERSION}"
                    )
                raise FramingError(f"bad frame magic byte 0x{magic:02x}")
            if length > MAX_FRAME:
                raise FramingError(
                    f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return  # torn mid-payload: wait for the rest
            raw = bytes(self._buffer[_HEADER.size : end])
            del self._buffer[:end]
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FramingError(f"bad frame payload: {exc}") from exc
            if not isinstance(payload, dict):
                raise FramingError(
                    f"frame payload must be an object, got {type(payload).__name__}"
                )
            yield payload


# ---------------------------------------------------------------------------
# request payloads <-> protocol commands
# ---------------------------------------------------------------------------

#: Event wire shape shared with the write-ahead journal: the same JSON
#: object describes an event on the network and in the WAL, so a framed
#: ``post`` request and its journal entry are byte-comparable.


def event_to_payload(event: EventMessage) -> dict:
    from repro.network.wal import event_payload

    return event_payload(event)


def payload_to_event(payload: dict) -> EventMessage:
    from repro.network.wal import payload_event

    try:
        return payload_event(payload)
    except (KeyError, ValueError, TypeError) as exc:
        raise FramingError(f"bad event payload: {exc}") from exc


#: Framed commands with no arguments beyond the tag.
_BARE_COMMANDS = frozenset(
    {
        "stale",
        "pending",
        "status",
        "health",
        "subscribe",
        "ping",
        "quit",
        "policy_status",
        "policy_rollback",
    }
)

#: Framed commands whose arguments are a flat list of string tokens
#: (mirroring the line dialect's shlex-split tail).
_ARGS_COMMANDS = frozenset({"policy_propose", "policy_approve", "audit"})

#: Client→server credit verbs (flow control for the push stream).
CREDIT_PAUSE = "PAUSE"
CREDIT_RESUME = "RESUME"


def request_to_command(payload: dict) -> Command:
    """Parse one framed request payload into a protocol :class:`Command`.

    Raises :class:`FramingError` (a :class:`ProtocolError`) with a
    human-readable reason; the server echoes it in the error response.
    """
    cmd = payload.get("cmd")
    if not isinstance(cmd, str):
        raise FramingError("request has no 'cmd'")
    if cmd in ("post", "postEvent"):
        event = payload.get("event")
        if isinstance(event, str):
            # Line-dialect escape hatch: a full ``postEvent ...`` line.
            return Command(kind="post", event=parse_post_event(event))
        if not isinstance(event, dict):
            raise FramingError("post request needs an 'event' object")
        return Command(kind="post", event=payload_to_event(event))
    if cmd == "batch":
        members = payload.get("events")
        if not isinstance(members, list) or not members:
            raise FramingError("batch request needs a non-empty 'events' list")
        return Command(
            kind="batch",
            events=tuple(payload_to_event(member) for member in members),
        )
    if cmd == "query":
        wire = payload.get("oid")
        if not isinstance(wire, str):
            raise FramingError("query request needs an 'oid' string")
        try:
            return Command(kind="query", oid=OID.parse(wire))
        except Exception as exc:
            raise FramingError(f"bad OID {wire!r}: {exc}") from exc
    if cmd in _ARGS_COMMANDS:
        args = payload.get("args", [])
        if not isinstance(args, list) or not all(
            isinstance(arg, str) for arg in args
        ):
            raise FramingError(f"{cmd} request needs an 'args' string list")
        if cmd == "policy_propose" and len(args) < 2:
            raise FramingError(
                "policy_propose needs at least [change_class, op] args"
            )
        if cmd == "policy_approve" and len(args) != 1:
            raise FramingError("policy_approve needs exactly one version arg")
        if cmd == "audit" and len(args) > 1:
            raise FramingError("audit takes at most one limit arg")
        return Command(kind=cmd, args=tuple(args))
    if cmd in _BARE_COMMANDS:
        return Command(kind=cmd)
    raise FramingError(f"unknown framed command {cmd!r}")


def command_to_request(command: Command, request_id: int) -> dict:
    """Render a protocol :class:`Command` as a framed request payload."""
    if command.kind == "post":
        assert command.event is not None
        return {
            "id": request_id,
            "cmd": "post",
            "event": event_to_payload(command.event),
        }
    if command.kind == "batch":
        return {
            "id": request_id,
            "cmd": "batch",
            "events": [event_to_payload(event) for event in command.events],
        }
    if command.kind == "query":
        assert command.oid is not None
        return {"id": request_id, "cmd": "query", "oid": command.oid.wire()}
    if command.kind in _ARGS_COMMANDS:
        return {
            "id": request_id,
            "cmd": command.kind,
            "args": list(command.args),
        }
    return {"id": request_id, "cmd": command.kind}


# ---------------------------------------------------------------------------
# blocking socket channel (sync client side)
# ---------------------------------------------------------------------------


class FrameChannel:
    """A blocking socket wrapped in the frame codec (client side).

    Owns its receive buffer, so a timeout mid-frame keeps the partial
    bytes for the next call — the framed analogue of the byte-buffered
    line reads the self-healing client uses.
    """

    def __init__(self, conn: socket.socket) -> None:
        self.conn = conn
        self._decoder = FrameDecoder()
        self._ready: list[dict] = []

    def send(self, payload: dict) -> None:
        self.conn.sendall(encode_frame(payload))

    def recv(self) -> dict:
        """Block (under the socket's timeout) until one frame arrives.

        Raises ``OSError``/``socket.timeout`` from the socket layer and
        :class:`FramingError` on stream corruption; returns frames
        strictly in arrival order.  EOF raises ``ConnectionError``.
        """
        while not self._ready:
            chunk = self.conn.recv(65536)
            if not chunk:
                raise ConnectionResetError("connection closed by peer")
            self._ready.extend(self._decoder.feed(chunk))
        return self._ready.pop(0)

    def recv_buffered(self) -> dict | None:
        """One already-decoded frame, or None — never touches the socket.

        Lets a caller that multiplexes its own socket waits (select with
        a deadline, as the framed subscription does) drain frames the
        decoder completed from earlier reads before blocking again.
        """
        if self._ready:
            return self._ready.pop(0)
        return None

    def feed(self, chunk: bytes) -> None:
        """Push bytes read outside :meth:`recv` through the decoder."""
        self._ready.extend(self._decoder.feed(chunk))

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
