"""In-process event bus: the transport used by tests and single-process
projects.

The bus speaks the same line dialect as the TCP server, so a wrapper
written against the bus works unchanged against the network — the
"generic interface which facilitates the tool integration" of the
conclusion.  ``process_after_post`` controls whether each accepted event
is processed immediately (synchronous projects, the default) or left in
the queue for an explicit :meth:`drain` (batching, benchmarks).

Beyond posting, the bus is the server's command back end:

* ``stale`` answers from a wire-format mirror of the database's
  incremental stale set, kept current by a stale-change listener —
  O(result), no scan, safe to read from any thread;
* ``subscribe`` registers a per-connection callback; the same listener
  fans ``STALE <oid>`` / ``FRESH <oid>`` lines out to every subscriber
  the moment a wave re-buckets an object;
* ``batch`` validates every target before posting anything (atomic
  accept/reject), then drains the queue once;
* engine failures (strict-mode :class:`EngineError`, database errors)
  are converted to ``ERR`` responses instead of escaping to the
  transport — a bad post must never kill the connection.

Durability (the crash-safe server): when a :class:`WriteAheadLog` is
attached, every admitted ``postEvent`` / ``batch`` is fsync'd to the
journal *before* the wave runs — an ``OK`` therefore implies the event
survives a process kill — and :meth:`apply_journal_entry` re-admits
recovered entries through the exact same code paths, so replay is the
live semantics, not a reimplementation of them.  The TCP server splits
the write path in two (:meth:`admit_durable` outside its exclusive
lock, :meth:`apply_admitted` inside it) so concurrent clients share
fsync barriers — group commit — while the seq-ordered apply gate keeps
wave order identical to journal order.  A bounded writer queue
(``busy_limit``) turns overload into an explicit ``ERR busy`` with a
retry hint instead of unbounded growth, and ``health`` reports the
gauges (journal lag, queue depth, rejection counts) a load balancer or
self-healing client needs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core.engine import BlueprintEngine, EngineError
from repro.core.events import EventMessage
from repro.core.journal import JournalEntry, JournalError
from repro.metadb.errors import MetaDBError
from repro.metadb.links import Direction
from repro.metadb.oid import OID
from repro.network.protocol import (
    Command,
    ProtocolError,
    busy_response,
    err_response,
    format_notification,
    format_pending_response,
    format_query_response,
    format_stale_response,
    format_status_response,
    ok_response,
    parse_command,
)
from repro.network.wal import WriteAheadLog, payload_event
from repro.testing.faults import crash_point

#: Subscriber signature: receives one formatted notification line.
Subscriber = Callable[[str], None]


@dataclass
class EventBus:
    """Line-protocol front end over one :class:`BlueprintEngine`."""

    engine: BlueprintEngine
    process_after_post: bool = True
    lines_seen: int = 0
    errors: list[str] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=dict)
    #: Write-ahead journal: admitted posts/batches are fsync'd here
    #: before their wave runs (None = no durability layer).
    wal: WriteAheadLog | None = None
    #: Reject posts with ``ERR busy`` once the engine queue holds this
    #: many events (None = unbounded; the pre-crash-safety behaviour).
    busy_limit: int | None = None
    #: Retry hint carried in the busy rejection.
    retry_after: float = 0.1
    #: Run ``checkpointer`` after this many journaled events so the
    #: journal stays bounded (None = only explicit checkpoints).
    checkpoint_every: int | None = None
    #: Persists the database and truncates the journal; returns True on
    #: success.  Supplied by ``damocles serve`` (it owns paths/backends).
    checkpointer: Callable[[], bool] | None = None

    def __post_init__(self) -> None:
        self._events_since_checkpoint = 0
        # Apply gate for group commit: journaled writes may be admitted
        # (validated + fsync'd) by many threads at once, but their waves
        # must run in journal order or replay would reconstruct a
        # different state.  ``_next_apply`` is the journal seq whose wave
        # may run next; the TCP server admits outside its exclusive lock
        # and then waits its turn here before taking the lock.
        self._apply_cond = threading.Condition()
        self._next_apply = (self.wal.last_seq + 1) if self.wal is not None else 1
        # Wire-format mirror of the incremental stale set.  The listener
        # fires from whichever thread runs the wave; readers take the
        # same small lock, so `stale` answers consistently without ever
        # touching database internals mid-mutation.
        self._stale_lock = threading.Lock()
        # Counter increments need their own lock: the server's lock-free
        # read paths (query/stale/status/ping) count from many handler
        # threads at once, and `+=` on a shared int loses updates.
        self._stats_lock = threading.Lock()
        self._stale_wire: set[OID] = set(self.engine.db.stale_set())
        self._subscribers: list[Subscriber] = []
        self._closed = False
        self.engine.db.on_stale_change(self._on_stale_change)

    def close(self) -> None:
        """Detach from the database's stale-listener channel.

        Without this a short-lived bus over a long-lived engine keeps
        its listener (and therefore itself) alive on the database for
        every future stale transition.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.engine.db.remove_stale_listener(self._on_stale_change)
        except ValueError:
            pass

    def reopen(self) -> None:
        """Undo :meth:`close`: reseed the mirror and re-listen."""
        if not self._closed:
            return
        self._closed = False
        with self._stale_lock:
            self._stale_wire = set(self.engine.db.stale_set())
        self.engine.db.on_stale_change(self._on_stale_change)

    # -- programmatic posting -------------------------------------------------

    def post(
        self,
        name: str,
        target: OID | str,
        direction: Direction | str = Direction.DOWN,
        arg: str = "",
        user: str = "",
    ) -> EventMessage:
        event = self.engine.post(name, target, direction, arg, user)
        if self.process_after_post:
            self.engine.run()
        return event

    def post_message(self, event: EventMessage) -> EventMessage:
        stamped = self.engine.post_message(event)
        if self.process_after_post:
            self.engine.run()
        return stamped

    def drain(self) -> int:
        """Process everything pending; returns the number of waves run."""
        return self.engine.run()

    # -- stale mirror / subscriptions ----------------------------------------

    def _on_stale_change(self, oid: OID, is_stale: bool) -> None:
        with self._stale_lock:
            if is_stale:
                self._stale_wire.add(oid)
            else:
                self._stale_wire.discard(oid)
        self.publish(format_notification(oid, is_stale))

    def stale_snapshot(self) -> list[OID]:
        """A consistent copy of the stale set, answered from the mirror."""
        with self._stale_lock:
            return list(self._stale_wire)

    def subscribe(self, subscriber: Subscriber) -> None:
        """Send every future ``STALE`` / ``FRESH`` line to *subscriber*."""
        with self._stale_lock:
            if subscriber not in self._subscribers:
                self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        with self._stale_lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    @property
    def subscriber_count(self) -> int:
        with self._stale_lock:
            return len(self._subscribers)

    def publish(self, line: str) -> None:
        """Fan one notification line out to every subscriber.

        A subscriber that raises (closed socket, slow client gone) is
        dropped; delivery to the others continues.
        """
        with self._stale_lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber(line)
            except Exception:
                self.unsubscribe(subscriber)
                self._count("subscribers_dropped")
        if subscribers:
            self._count("notifications_sent", len(subscribers))

    def _count(self, name: str, by: int = 1) -> None:
        with self._stats_lock:
            self.stats[name] = self.stats.get(name, 0) + by

    # -- line protocol -----------------------------------------------------------

    def note_wire_message(self) -> None:
        """Count one non-line wire message (framed transport requests),
        so ``lines_seen`` stays the total-messages gauge it has always
        been regardless of transport."""
        with self._stats_lock:
            self.lines_seen += 1

    def parse_line(self, line: str) -> Command:
        """Count and parse one wire line (shared with the TCP handler)."""
        with self._stats_lock:
            self.lines_seen += 1
        try:
            return parse_command(line)
        except ProtocolError as exc:
            self.errors.append(str(exc))
            raise

    def handle_line(
        self,
        line: str,
        subscriber: Subscriber | None = None,
        health_extra: dict[str, int] | None = None,
    ) -> str:
        """Process one wire line, returning the response line."""
        try:
            command = self.parse_line(line)
        except ProtocolError as exc:
            return err_response(str(exc))
        return self.handle_command(
            command, subscriber=subscriber, health_extra=health_extra
        )

    def handle_command(
        self,
        command: Command,
        subscriber: Subscriber | None = None,
        health_extra: dict[str, int] | None = None,
    ) -> str:
        if command.kind == "ping":
            return "PONG"
        if command.kind == "quit":
            return "BYE"
        if command.kind == "health":
            return format_status_response(self.health_counters(health_extra))
        if command.kind == "post":
            assert command.event is not None
            return self._handle_post(command.event)
        if command.kind == "batch":
            return self._handle_batch(command.events)
        if command.kind == "query":
            assert command.oid is not None
            obj = self.engine.db.find(command.oid)
            if obj is None:
                return err_response(f"unknown OID {command.oid}")
            return format_query_response(obj.properties.as_dict())
        if command.kind == "stale":
            self._count("stale_from_set")
            return format_stale_response(self.stale_snapshot())
        if command.kind == "pending":
            return self._handle_pending()
        if command.kind == "status":
            return format_status_response(self.status_counters())
        if command.kind == "subscribe":
            if subscriber is None:
                return err_response(
                    "subscribe requires a streaming connection "
                    "(use the TCP server or EventBus.subscribe)"
                )
            self.subscribe(subscriber)
            return ok_response("subscribed")
        return err_response(f"unhandled command kind {command.kind!r}")

    # -- command back ends ----------------------------------------------------

    def _busy(self) -> str | None:
        """Backpressure: reject before admission when the queue is full.

        A busy rejection happens *before* validation and journaling, so
        the event provably did not run — which is what makes it safe for
        a client to retry even a non-idempotent post.
        """
        if self.busy_limit is None:
            return None
        depth = len(self.engine.queue)
        if depth < self.busy_limit:
            return None
        return self.reject_busy(f"queue depth {depth}")

    def reject_busy(self, detail: str) -> str:
        """Count and format one backpressure rejection (server + bus)."""
        self._count("busy_rejections")
        return busy_response(self.retry_after, detail)

    def _journal(
        self, append: Callable[[], JournalEntry], entries: int
    ) -> tuple[JournalEntry | None, str | None]:
        """Make the admission durable; an ERR here means the wave will
        not run in this process (though an entry whose fsync failed
        after the write may still be recovered after a restart).

        Returns ``(entry, None)`` on success, ``(None, response)`` on
        failure.
        """
        try:
            entry = append()
        except (OSError, JournalError) as exc:
            self._count("journal_errors")
            return None, err_response(
                f"journal append failed: {exc}; event not admitted"
            )
        self._count("journal_appends", entries)
        self._events_since_checkpoint += entries
        return entry, None

    def _handle_post(self, event: EventMessage) -> str:
        return self._handle_write("post", (event,))

    def _handle_batch(self, events: tuple[EventMessage, ...]) -> str:
        return self._handle_write("batch", events)

    def _handle_write(self, kind: str, events: tuple[EventMessage, ...]) -> str:
        """Serialized write path (in-process bus, lazy databases)."""
        admitted = self._admit_write(kind, events)
        if isinstance(admitted, str):
            return admitted
        if admitted is None:  # no journal attached
            try:
                return self._apply_write(kind, events)
            finally:
                self._maybe_checkpoint()
        entry = admitted
        self.wait_turn(entry.seq)
        return self.apply_admitted(entry, events)

    def admit_durable(
        self, command: Command
    ) -> tuple[JournalEntry, tuple[EventMessage, ...]] | str:
        """Validate + journal a post/batch WITHOUT running its wave.

        The group-commit half of the server's write path: called
        *outside* the exclusive lock so that concurrent clients' fsync
        barriers overlap in the journal.  The caller must then
        :meth:`wait_turn`, run :meth:`apply_admitted` under the
        exclusive lock, and (on failure paths) :meth:`done_turn`.
        Returns the response string when the command was rejected
        before admission (busy, unknown OID, journal failure).
        """
        assert self.wal is not None
        events = (command.event,) if command.kind == "post" else command.events
        # defer_sync: the wave may run before the disk barrier; the
        # server holds the client's response in :meth:`ensure_durable`
        # until the barrier lands, so an OK still implies on-disk.
        # Deferring lets the fsync overlap the wave AND collect the
        # entries of every other client that reached the same point —
        # the pile-up is what makes group commit amortise.
        admitted = self._admit_write(command.kind, events, defer_sync=True)
        if isinstance(admitted, str):
            return admitted
        assert admitted is not None
        return admitted, events

    def ensure_durable(self, entry: JournalEntry, response: str) -> str:
        """Group commit, part two: hold *response* until *entry* is on
        disk.  On a barrier failure the honest answer replaces it — the
        wave ran in this process, but a crash could still lose it."""
        assert self.wal is not None
        try:
            self.wal.sync(entry.seq)
        except (OSError, JournalError) as exc:
            self._count("journal_errors")
            return err_response(
                f"journal sync failed: {exc}; "
                "event applied in memory but not durable"
            )
        return response

    def _admit_write(
        self,
        kind: str,
        events: tuple[EventMessage, ...],
        defer_sync: bool = False,
    ) -> JournalEntry | str | None:
        """Backpressure + validation + durable journal append.

        Returns the journal entry (wal attached), ``None`` (no wal), or
        a rejection response string.
        """
        if kind == "batch" and not events:
            return err_response("batch of zero events")
        busy = self._busy()
        if busy is not None:
            return busy
        # Validate targets at post time: silently dropping the event in
        # _deliver (non-strict) or killing the connection (strict) are
        # both worse than an honest ERR.
        unknown = [
            event.target.wire()
            for event in events
            if self.engine.db.find(event.target) is None
        ]
        if unknown:
            self._count("posts_rejected", len(unknown))
            if kind == "post":
                return err_response(f"unknown OID {unknown[0]}")
            return err_response(
                f"unknown OID {' '.join(sorted(set(unknown)))}; nothing posted"
            )
        if self.wal is None:
            crash_point("mid-wave")
            return None
        if kind == "post":
            entry, failed = self._journal(
                lambda: self.wal.append_event(events[0], sync=not defer_sync), 1
            )
        else:
            # One journal entry (one fsync) for the whole batch: replay
            # then reproduces batch semantics — including
            # withdraw-on-error — instead of replaying members an
            # errored batch never ran.
            entry, failed = self._journal(
                lambda: self.wal.append_batch(events, sync=not defer_sync),
                len(events),
            )
        if failed is not None:
            return failed
        # The event is durable but its wave has not run: a kill here is
        # the canonical lost-update crash the journal exists to survive.
        crash_point("mid-wave")
        return entry

    def wait_turn(self, seq: int) -> None:
        """Block until journal entry *seq* is next in line to apply."""
        with self._apply_cond:
            while seq != self._next_apply:
                self._apply_cond.wait()

    def done_turn(self, seq: int) -> None:
        """Advance the apply gate past *seq* (idempotent)."""
        with self._apply_cond:
            if self._next_apply == seq:
                self._next_apply = seq + 1
                self._apply_cond.notify_all()

    @property
    def applied_seq(self) -> int:
        """Highest journal seq whose wave has run (checkpoint watermark).

        Correct as a database watermark only while the caller prevents
        new waves — the server's checkpointer runs under the exclusive
        lock, the serialized bus path is single-writer by construction.
        """
        if self.wal is None:
            return 0
        with self._apply_cond:
            return self._next_apply - 1

    def apply_admitted(
        self, entry: JournalEntry, events: tuple[EventMessage, ...]
    ) -> str:
        """Run the wave for an already-journaled write (turn held)."""
        try:
            try:
                return self._apply_write(entry.kind, events)
            finally:
                self.done_turn(entry.seq)
        finally:
            self._maybe_checkpoint()

    def _apply_write(self, kind: str, events: tuple[EventMessage, ...]) -> str:
        if kind in ("post", "event"):
            return self._admit_post(events[0])
        return self._admit_batch(events)

    def _admit_post(self, event: EventMessage) -> str:
        """Run one admitted event; shared by the wire path and recovery."""
        try:
            stamped = self.post_message(event)
        except (EngineError, MetaDBError) as exc:
            self._count("engine_errors")
            return err_response(f"engine: {exc}")
        return ok_response(str(stamped.seq))

    def _admit_batch(self, events: tuple[EventMessage, ...]) -> str:
        # Atomic accept: stamp everything first, then drain once, so the
        # batch occupies one contiguous FIFO window in the queue.
        stamped = [self.engine.post_message(event) for event in events]
        self._count("batches")
        try:
            if self.process_after_post:
                self.engine.run()
        except (EngineError, MetaDBError) as exc:
            self._count("engine_errors")
            # Withdraw the unprocessed remainder: an ERR response
            # promises the batch was rejected, so the events still
            # queued must not execute during the next post's drain.
            self.engine.queue.discard({event.seq for event in stamped})
            return err_response(f"engine: {exc}")
        return ok_response(" ".join(str(event.seq) for event in stamped))

    # -- durability: recovery and checkpointing -------------------------------

    def apply_journal_entry(self, entry: JournalEntry) -> str:
        """Re-admit one recovered journal entry (startup replay).

        Runs the exact admission code the wire path runs — engine errors
        reproduce deterministically as the same ``ERR`` the original
        client saw — but skips validation, journaling and busy checks:
        the entry was already admitted once.
        """
        if entry.kind == "event":
            return self._admit_post(payload_event(entry.payload))
        if entry.kind == "batch":
            events = tuple(
                payload_event(payload) for payload in entry.payload["events"]
            )
            return self._admit_batch(events)
        raise JournalError(f"unknown journal entry kind {entry.kind!r}")

    def _maybe_checkpoint(self) -> None:
        if (
            self.checkpointer is None
            or self.checkpoint_every is None
            or self._events_since_checkpoint < self.checkpoint_every
        ):
            return
        self.run_checkpoint()

    def run_checkpoint(self) -> bool:
        """Persist the database and truncate the journal (if configured).

        Failure is survivable by design: the journal is kept, the
        counter keeps accumulating, and the next post retries.
        """
        if self.checkpointer is None:
            return False
        if self.checkpointer():
            self._count("checkpoints")
            self._events_since_checkpoint = 0
            return True
        self._count("checkpoint_failures")
        return False

    def health_counters(
        self, extra: dict[str, int] | None = None
    ) -> dict[str, int]:
        """Durability/backpressure gauges; lock-free like ``status``."""
        counters = {
            "queue": len(self.engine.queue),
            "stale": len(self._stale_wire),
            "subscribers": self.subscriber_count,
            "busy_rejections": self.stats.get("busy_rejections", 0),
            "engine_errors": self.stats.get("engine_errors", 0),
            "journal_appends": self.stats.get("journal_appends", 0),
            "journal_errors": self.stats.get("journal_errors", 0),
            "checkpoints": self.stats.get("checkpoints", 0),
            "checkpoint_failures": self.stats.get("checkpoint_failures", 0),
            "events_since_checkpoint": self._events_since_checkpoint,
        }
        if self.wal is not None:
            counters["journal_seq"] = self.wal.last_seq
            counters["journal_durable"] = self.wal.durable_seq
            counters["journal_applied"] = self.applied_seq
            counters["journal_checkpoint"] = self.wal.checkpoint_seq
            counters["journal_lag"] = self.wal.lag
            counters["journal_segments"] = self.wal.segment_count
            counters["journal_broken"] = int(self.wal.broken)
            counters["journal_barriers"] = self.wal.sync_barriers
        if extra:
            counters.update(extra)
        return counters

    def _handle_pending(self) -> str:
        from repro.core.state import pending_work

        work = pending_work(self.engine.db, self.engine.blueprint)
        return format_pending_response(
            [(item.oid, item.failing) for item in work]
        )

    def status_counters(self) -> dict[str, int]:
        """GIL-atomic counter snapshot: safe to read while a wave runs."""
        db = self.engine.db
        metrics = self.engine.metrics
        return {
            "objects": db.object_count,
            "links": db.link_count,
            "stale": len(self._stale_wire),
            "queue": len(self.engine.queue),
            "events_posted": metrics.events_posted,
            "waves": metrics.waves,
            "deliveries": metrics.deliveries,
            "subscribers": self.subscriber_count,
            "lines_seen": self.lines_seen,
            "clock": db.clock,
        }
