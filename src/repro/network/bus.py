"""In-process event bus: the transport used by tests and single-process
projects.

The bus speaks the same line dialect as the TCP server, so a wrapper
written against the bus works unchanged against the network — the
"generic interface which facilitates the tool integration" of the
conclusion.  ``process_after_post`` controls whether each accepted event
is processed immediately (synchronous projects, the default) or left in
the queue for an explicit :meth:`drain` (batching, benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import BlueprintEngine
from repro.core.events import EventMessage
from repro.metadb.links import Direction
from repro.metadb.oid import OID
from repro.network.protocol import (
    Command,
    ProtocolError,
    err_response,
    format_query_response,
    ok_response,
    parse_command,
)


@dataclass
class EventBus:
    """Line-protocol front end over one :class:`BlueprintEngine`."""

    engine: BlueprintEngine
    process_after_post: bool = True
    lines_seen: int = 0
    errors: list[str] = field(default_factory=list)

    # -- programmatic posting -------------------------------------------------

    def post(
        self,
        name: str,
        target: OID | str,
        direction: Direction | str = Direction.DOWN,
        arg: str = "",
        user: str = "",
    ) -> EventMessage:
        event = self.engine.post(name, target, direction, arg, user)
        if self.process_after_post:
            self.engine.run()
        return event

    def post_message(self, event: EventMessage) -> EventMessage:
        stamped = self.engine.post_message(event)
        if self.process_after_post:
            self.engine.run()
        return stamped

    def drain(self) -> int:
        """Process everything pending; returns the number of waves run."""
        return self.engine.run()

    # -- line protocol -----------------------------------------------------------

    def handle_line(self, line: str) -> str:
        """Process one wire line, returning the response line."""
        self.lines_seen += 1
        try:
            command = parse_command(line)
        except ProtocolError as exc:
            self.errors.append(str(exc))
            return err_response(str(exc))
        return self.handle_command(command)

    def handle_command(self, command: Command) -> str:
        if command.kind == "ping":
            return "PONG"
        if command.kind == "quit":
            return "BYE"
        if command.kind == "post":
            assert command.event is not None
            stamped = self.post_message(command.event)
            return ok_response(str(stamped.seq))
        if command.kind == "query":
            assert command.oid is not None
            obj = self.engine.db.find(command.oid)
            if obj is None:
                return err_response(f"unknown OID {command.oid}")
            return format_query_response(obj.properties.as_dict())
        return err_response(f"unhandled command kind {command.kind!r}")
