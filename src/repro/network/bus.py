"""In-process event bus: the transport used by tests and single-process
projects.

The bus speaks the same line dialect as the TCP server, so a wrapper
written against the bus works unchanged against the network — the
"generic interface which facilitates the tool integration" of the
conclusion.  ``process_after_post`` controls whether each accepted event
is processed immediately (synchronous projects, the default) or left in
the queue for an explicit :meth:`drain` (batching, benchmarks).

Beyond posting, the bus is the server's command back end:

* ``stale`` answers from a wire-format mirror of the database's
  incremental stale set, kept current by a stale-change listener —
  O(result), no scan, safe to read from any thread;
* ``subscribe`` registers a per-connection callback; the same listener
  fans ``STALE <oid>`` / ``FRESH <oid>`` lines out to every subscriber
  the moment a wave re-buckets an object;
* ``batch`` validates every target before posting anything (atomic
  accept/reject), then drains the queue once;
* engine failures (strict-mode :class:`EngineError`, database errors)
  are converted to ``ERR`` responses instead of escaping to the
  transport — a bad post must never kill the connection.

Durability (the crash-safe server): when a :class:`WriteAheadLog` is
attached, every admitted ``postEvent`` / ``batch`` is fsync'd to the
journal *before* the wave runs — an ``OK`` therefore implies the event
survives a process kill — and :meth:`apply_journal_entry` re-admits
recovered entries through the exact same code paths, so replay is the
live semantics, not a reimplementation of them.  The TCP server splits
the write path in two (:meth:`admit_durable` outside its exclusive
lock, :meth:`apply_admitted` inside it) so concurrent clients share
fsync barriers — group commit — while the seq-ordered apply gate keeps
wave order identical to journal order.  A bounded writer queue
(``busy_limit``) turns overload into an explicit ``ERR busy`` with a
retry hint instead of unbounded growth, and ``health`` reports the
gauges (journal lag, queue depth, rejection counts) a load balancer or
self-healing client needs.

Governance (policy engine v2): every bus owns a
:class:`~repro.core.policy.GovernedPolicy`.  Event writes are evaluated
at *apply* time — under the seq-ordered gate, so decisions happen in
journal order and replay re-derives them deterministically — and every
deny is both audited and tombstoned into the WAL (an ``audit`` entry
referencing the denied entry's seq, fsync'd before the ``ERR`` goes
out), which is how a non-deterministic ``policy_fault`` denial survives
replay.  Tombstone seqs are never waited on by any writer, so
:meth:`done_turn` skips them via ``_skip_seqs``.  Policy lifecycle
commands (``policy propose/approve/rollback``) ride the same
admit/journal/apply pipeline as posts: validated at admission, journaled
as ``policy`` entries, applied (and audited) in seq order —
``crash_point("mid-policy-apply")`` sits between validation and the
journal append, so a kill there loses the command while an earlier
journaled propose survives as pending.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core.engine import BlueprintEngine, EngineError
from repro.core.events import EventMessage
from repro.core.journal import JournalEntry, JournalError
from repro.core.policy import ALLOW, DENY, GovernedPolicy, PolicyError
from repro.metadb.errors import MetaDBError
from repro.metadb.links import Direction
from repro.metadb.oid import OID
from repro.network.protocol import (
    POLICY_WRITES,
    Command,
    ProtocolError,
    busy_response,
    err_response,
    format_audit_response,
    format_notification,
    format_pending_response,
    format_policy_status,
    format_query_response,
    format_stale_response,
    format_status_response,
    ok_response,
    parse_command,
)
from repro.network.wal import WriteAheadLog, payload_event
from repro.testing.faults import crash_point

#: Subscriber signature: receives one formatted notification line.
Subscriber = Callable[[str], None]


@dataclass
class EventBus:
    """Line-protocol front end over one :class:`BlueprintEngine`."""

    engine: BlueprintEngine
    process_after_post: bool = True
    lines_seen: int = 0
    errors: list[str] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=dict)
    #: Write-ahead journal: admitted posts/batches are fsync'd here
    #: before their wave runs (None = no durability layer).
    wal: WriteAheadLog | None = None
    #: Reject posts with ``ERR busy`` once the engine queue holds this
    #: many events (None = unbounded; the pre-crash-safety behaviour).
    busy_limit: int | None = None
    #: Retry hint carried in the busy rejection.
    retry_after: float = 0.1
    #: Run ``checkpointer`` after this many journaled events so the
    #: journal stays bounded (None = only explicit checkpoints).
    checkpoint_every: int | None = None
    #: Persists the database and truncates the journal; returns True on
    #: success.  Supplied by ``damocles serve`` (it owns paths/backends).
    checkpointer: Callable[[], bool] | None = None
    #: The governed policy consulted on every write (created from the
    #: engine when not supplied — every bus is governed).
    policy: GovernedPolicy | None = None

    def __post_init__(self) -> None:
        self._events_since_checkpoint = 0
        if self.policy is None:
            self.policy = GovernedPolicy(self.engine)
        # Journal seqs consumed by deny tombstones: appended mid-apply,
        # so no writer ever waits on them — ``done_turn`` hops over.
        self._skip_seqs: set[int] = set()
        # Apply gate for group commit: journaled writes may be admitted
        # (validated + fsync'd) by many threads at once, but their waves
        # must run in journal order or replay would reconstruct a
        # different state.  ``_next_apply`` is the journal seq whose wave
        # may run next; the TCP server admits outside its exclusive lock
        # and then waits its turn here before taking the lock.
        self._apply_cond = threading.Condition()
        self._next_apply = (self.wal.last_seq + 1) if self.wal is not None else 1
        # Wire-format mirror of the incremental stale set.  The listener
        # fires from whichever thread runs the wave; readers take the
        # same small lock, so `stale` answers consistently without ever
        # touching database internals mid-mutation.
        self._stale_lock = threading.Lock()
        # Counter increments need their own lock: the server's lock-free
        # read paths (query/stale/status/ping) count from many handler
        # threads at once, and `+=` on a shared int loses updates.
        self._stats_lock = threading.Lock()
        self._stale_wire: set[OID] = set(self.engine.db.stale_set())
        self._subscribers: list[Subscriber] = []
        self._closed = False
        self.engine.db.on_stale_change(self._on_stale_change)

    def close(self) -> None:
        """Detach from the database's stale-listener channel.

        Without this a short-lived bus over a long-lived engine keeps
        its listener (and therefore itself) alive on the database for
        every future stale transition.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.engine.db.remove_stale_listener(self._on_stale_change)
        except ValueError:
            pass

    def reopen(self) -> None:
        """Undo :meth:`close`: reseed the mirror and re-listen."""
        if not self._closed:
            return
        self._closed = False
        with self._stale_lock:
            self._stale_wire = set(self.engine.db.stale_set())
        self.engine.db.on_stale_change(self._on_stale_change)

    # -- programmatic posting -------------------------------------------------

    def post(
        self,
        name: str,
        target: OID | str,
        direction: Direction | str = Direction.DOWN,
        arg: str = "",
        user: str = "",
    ) -> EventMessage:
        event = self.engine.post(name, target, direction, arg, user)
        if self.process_after_post:
            self.engine.run()
        return event

    def post_message(self, event: EventMessage) -> EventMessage:
        stamped = self.engine.post_message(event)
        if self.process_after_post:
            self.engine.run()
        return stamped

    def drain(self) -> int:
        """Process everything pending; returns the number of waves run."""
        return self.engine.run()

    # -- stale mirror / subscriptions ----------------------------------------

    def _on_stale_change(self, oid: OID, is_stale: bool) -> None:
        with self._stale_lock:
            if is_stale:
                self._stale_wire.add(oid)
            else:
                self._stale_wire.discard(oid)
        self.publish(format_notification(oid, is_stale))

    def stale_snapshot(self) -> list[OID]:
        """A consistent copy of the stale set, answered from the mirror."""
        with self._stale_lock:
            return list(self._stale_wire)

    def subscribe(self, subscriber: Subscriber) -> None:
        """Send every future ``STALE`` / ``FRESH`` line to *subscriber*."""
        with self._stale_lock:
            if subscriber not in self._subscribers:
                self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        with self._stale_lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    @property
    def subscriber_count(self) -> int:
        with self._stale_lock:
            return len(self._subscribers)

    def publish(self, line: str) -> None:
        """Fan one notification line out to every subscriber.

        A subscriber that raises (closed socket, slow client gone) is
        dropped; delivery to the others continues.
        """
        with self._stale_lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber(line)
            except Exception:
                self.unsubscribe(subscriber)
                self._count("subscribers_dropped")
        if subscribers:
            self._count("notifications_sent", len(subscribers))

    def _count(self, name: str, by: int = 1) -> None:
        with self._stats_lock:
            self.stats[name] = self.stats.get(name, 0) + by

    # -- line protocol -----------------------------------------------------------

    def note_wire_message(self) -> None:
        """Count one non-line wire message (framed transport requests),
        so ``lines_seen`` stays the total-messages gauge it has always
        been regardless of transport."""
        with self._stats_lock:
            self.lines_seen += 1

    def parse_line(self, line: str) -> Command:
        """Count and parse one wire line (shared with the TCP handler)."""
        with self._stats_lock:
            self.lines_seen += 1
        try:
            return parse_command(line)
        except ProtocolError as exc:
            self.errors.append(str(exc))
            raise

    def handle_line(
        self,
        line: str,
        subscriber: Subscriber | None = None,
        health_extra: dict[str, int] | None = None,
    ) -> str:
        """Process one wire line, returning the response line."""
        try:
            command = self.parse_line(line)
        except ProtocolError as exc:
            return err_response(str(exc))
        return self.handle_command(
            command, subscriber=subscriber, health_extra=health_extra
        )

    def handle_command(
        self,
        command: Command,
        subscriber: Subscriber | None = None,
        health_extra: dict[str, int] | None = None,
    ) -> str:
        if command.kind == "ping":
            return "PONG"
        if command.kind == "quit":
            return "BYE"
        if command.kind == "health":
            return format_status_response(self.health_counters(health_extra))
        if command.kind == "post":
            assert command.event is not None
            return self._handle_post(command.event)
        if command.kind == "batch":
            return self._handle_batch(command.events)
        if command.kind in POLICY_WRITES:
            return self._handle_write(
                command.kind, (), spec=self._policy_spec(command)
            )
        if command.kind == "policy_status":
            return format_policy_status(self.policy.status_fields())
        if command.kind == "audit":
            limit = int(command.args[0]) if command.args else None
            return format_audit_response(
                [record.to_payload() for record in self.policy.audit_tail(limit)]
            )
        if command.kind == "query":
            assert command.oid is not None
            obj = self.engine.db.find(command.oid)
            if obj is None:
                return err_response(f"unknown OID {command.oid}")
            return format_query_response(obj.properties.as_dict())
        if command.kind == "stale":
            self._count("stale_from_set")
            return format_stale_response(self.stale_snapshot())
        if command.kind == "pending":
            return self._handle_pending()
        if command.kind == "status":
            return format_status_response(self.status_counters())
        if command.kind == "subscribe":
            if subscriber is None:
                return err_response(
                    "subscribe requires a streaming connection "
                    "(use the TCP server or EventBus.subscribe)"
                )
            self.subscribe(subscriber)
            return ok_response("subscribed")
        return err_response(f"unhandled command kind {command.kind!r}")

    # -- command back ends ----------------------------------------------------

    def _busy(self) -> str | None:
        """Backpressure: reject before admission when the queue is full.

        A busy rejection happens *before* validation and journaling, so
        the event provably did not run — which is what makes it safe for
        a client to retry even a non-idempotent post.
        """
        if self.busy_limit is None:
            return None
        depth = len(self.engine.queue)
        if depth < self.busy_limit:
            return None
        return self.reject_busy(f"queue depth {depth}")

    def reject_busy(self, detail: str) -> str:
        """Count and format one backpressure rejection (server + bus)."""
        self._count("busy_rejections")
        return busy_response(self.retry_after, detail)

    def _journal(
        self, append: Callable[[], JournalEntry], entries: int
    ) -> tuple[JournalEntry | None, str | None]:
        """Make the admission durable; an ERR here means the wave will
        not run in this process (though an entry whose fsync failed
        after the write may still be recovered after a restart).

        Returns ``(entry, None)`` on success, ``(None, response)`` on
        failure.
        """
        try:
            entry = append()
        except (OSError, JournalError) as exc:
            self._count("journal_errors")
            return None, err_response(
                f"journal append failed: {exc}; event not admitted"
            )
        self._count("journal_appends", entries)
        self._events_since_checkpoint += entries
        return entry, None

    def _handle_post(self, event: EventMessage) -> str:
        return self._handle_write("post", (event,))

    def _handle_batch(self, events: tuple[EventMessage, ...]) -> str:
        return self._handle_write("batch", events)

    @staticmethod
    def _policy_spec(command: Command) -> dict:
        """The journaled lifecycle spec for a policy write command."""
        if command.kind == "policy_propose":
            return {
                "change_class": command.args[0],
                "op": command.args[1],
                "args": list(command.args[2:]),
            }
        if command.kind == "policy_approve":
            return {"version": command.args[0]}
        return {}

    def _handle_write(
        self,
        kind: str,
        events: tuple[EventMessage, ...],
        spec: dict | None = None,
    ) -> str:
        """Serialized write path (in-process bus, lazy databases)."""
        admitted = self._admit_write(kind, events, spec=spec)
        if isinstance(admitted, str):
            return admitted
        if admitted is None:  # no journal attached
            try:
                return self._apply_write(kind, events, spec=spec)
            finally:
                self._maybe_checkpoint()
        entry = admitted
        self.wait_turn(entry.seq)
        return self.apply_admitted(entry, events)

    def admit_durable(
        self, command: Command
    ) -> tuple[JournalEntry, tuple[EventMessage, ...]] | str:
        """Validate + journal a post/batch WITHOUT running its wave.

        The group-commit half of the server's write path: called
        *outside* the exclusive lock so that concurrent clients' fsync
        barriers overlap in the journal.  The caller must then
        :meth:`wait_turn`, run :meth:`apply_admitted` under the
        exclusive lock, and (on failure paths) :meth:`done_turn`.
        Returns the response string when the command was rejected
        before admission (busy, unknown OID, journal failure).
        """
        assert self.wal is not None
        if command.kind in POLICY_WRITES:
            events: tuple[EventMessage, ...] = ()
            spec = self._policy_spec(command)
        else:
            events = (command.event,) if command.kind == "post" else command.events
            spec = None
        # defer_sync: the wave may run before the disk barrier; the
        # server holds the client's response in :meth:`ensure_durable`
        # until the barrier lands, so an OK still implies on-disk.
        # Deferring lets the fsync overlap the wave AND collect the
        # entries of every other client that reached the same point —
        # the pile-up is what makes group commit amortise.
        admitted = self._admit_write(
            command.kind, events, defer_sync=True, spec=spec
        )
        if isinstance(admitted, str):
            return admitted
        assert admitted is not None
        return admitted, events

    def ensure_durable(self, entry: JournalEntry, response: str) -> str:
        """Group commit, part two: hold *response* until *entry* is on
        disk.  On a barrier failure the honest answer replaces it — the
        wave ran in this process, but a crash could still lose it."""
        assert self.wal is not None
        try:
            self.wal.sync(entry.seq)
        except (OSError, JournalError) as exc:
            self._count("journal_errors")
            return err_response(
                f"journal sync failed: {exc}; "
                "event applied in memory but not durable"
            )
        return response

    def _admit_write(
        self,
        kind: str,
        events: tuple[EventMessage, ...],
        defer_sync: bool = False,
        spec: dict | None = None,
    ) -> JournalEntry | str | None:
        """Backpressure + validation + durable journal append.

        Returns the journal entry (wal attached), ``None`` (no wal), or
        a rejection response string.
        """
        if kind in POLICY_WRITES:
            busy = self._busy()
            if busy is not None:
                return busy
            # Admission-time validation: an obviously bad lifecycle
            # command (unknown op, class mismatch, nothing pending) is
            # refused before it ever reaches the journal.  Races that
            # slip past (two proposes admitted concurrently) are
            # re-checked at apply time, where the loser audits a deny.
            try:
                self.policy.validate(kind, spec or {})
            except PolicyError as exc:
                self._count("policy_rejected")
                return err_response(f"policy: {exc}")
            # A kill here loses the command entirely (it was never
            # journaled): the server restarts on the OLD version, with
            # any earlier journaled propose still pending — the
            # fail-closed direction for change control.
            crash_point("mid-policy-apply")
            if self.wal is None:
                return None
            entry, failed = self._journal(
                lambda: self.wal.append_policy(kind, spec or {}, sync=not defer_sync),
                1,
            )
            if failed is not None:
                return failed
            return entry
        if kind == "batch" and not events:
            return err_response("batch of zero events")
        busy = self._busy()
        if busy is not None:
            return busy
        # Validate targets at post time: silently dropping the event in
        # _deliver (non-strict) or killing the connection (strict) are
        # both worse than an honest ERR.
        unknown = [
            event.target.wire()
            for event in events
            if self.engine.db.find(event.target) is None
        ]
        if unknown:
            self._count("posts_rejected", len(unknown))
            if kind == "post":
                return err_response(f"unknown OID {unknown[0]}")
            return err_response(
                f"unknown OID {' '.join(sorted(set(unknown)))}; nothing posted"
            )
        if self.wal is None:
            crash_point("mid-wave")
            return None
        if kind == "post":
            entry, failed = self._journal(
                lambda: self.wal.append_event(events[0], sync=not defer_sync), 1
            )
        else:
            # One journal entry (one fsync) for the whole batch: replay
            # then reproduces batch semantics — including
            # withdraw-on-error — instead of replaying members an
            # errored batch never ran.
            entry, failed = self._journal(
                lambda: self.wal.append_batch(events, sync=not defer_sync),
                len(events),
            )
        if failed is not None:
            return failed
        # The event is durable but its wave has not run: a kill here is
        # the canonical lost-update crash the journal exists to survive.
        crash_point("mid-wave")
        return entry

    def wait_turn(self, seq: int) -> None:
        """Block until journal entry *seq* is next in line to apply."""
        with self._apply_cond:
            while seq != self._next_apply:
                self._apply_cond.wait()

    def done_turn(self, seq: int) -> None:
        """Advance the apply gate past *seq* (idempotent).

        Hops over deny-tombstone seqs: those entries are appended
        *during* an apply, so no writer thread ever waits a turn for
        them — leaving them in line would wedge the gate forever.
        """
        with self._apply_cond:
            if self._next_apply == seq:
                self._next_apply = seq + 1
                while self._next_apply in self._skip_seqs:
                    self._skip_seqs.discard(self._next_apply)
                    self._next_apply += 1
                self._apply_cond.notify_all()

    def _skip_turn(self, seq: int) -> None:
        """Mark *seq* (a tombstone entry) as never needing a turn."""
        with self._apply_cond:
            if self._next_apply == seq:
                self._next_apply = seq + 1
                self._apply_cond.notify_all()
            else:
                self._skip_seqs.add(seq)

    @property
    def applied_seq(self) -> int:
        """Highest journal seq whose wave has run (checkpoint watermark).

        Correct as a database watermark only while the caller prevents
        new waves — the server's checkpointer runs under the exclusive
        lock, the serialized bus path is single-writer by construction.
        """
        if self.wal is None:
            return 0
        with self._apply_cond:
            return self._next_apply - 1

    def apply_admitted(
        self, entry: JournalEntry, events: tuple[EventMessage, ...]
    ) -> str:
        """Run the wave for an already-journaled write (turn held)."""
        try:
            try:
                if entry.kind == "policy":
                    return self._apply_policy(
                        entry.payload["action"], entry.payload.get("spec", {})
                    )
                return self._apply_write(
                    entry.kind, events, entry_seq=entry.seq
                )
            finally:
                self.done_turn(entry.seq)
        finally:
            self._maybe_checkpoint()

    def _apply_write(
        self,
        kind: str,
        events: tuple[EventMessage, ...],
        spec: dict | None = None,
        entry_seq: int = 0,
        forced: dict[int, str] | None = None,
    ) -> str:
        if kind in POLICY_WRITES:
            return self._apply_policy(kind, spec or {})
        denied = self._gate(events, entry_seq=entry_seq, forced=forced)
        if denied is not None:
            return denied
        if kind in ("post", "event"):
            return self._admit_post(events[0])
        return self._admit_batch(events)

    def _gate(
        self,
        events: tuple[EventMessage, ...],
        *,
        entry_seq: int = 0,
        forced: dict[int, str] | None = None,
    ) -> str | None:
        """The fail-closed policy gate, run in seq order at apply time.

        Returns ``None`` when every event is allowed (each audited
        ``ALLOW``); otherwise audits the denies, tombstones them into
        the WAL (live path only — *forced* denials come FROM tombstones
        during recovery/replay and are never re-appended), and returns
        the ``ERR`` response.  Any deny rejects the whole write, so an
        ``ALLOW`` audit record always means the wave ran.
        """
        verdicts: list[tuple[str, str]] = []
        for index, event in enumerate(events):
            if forced is not None and index in forced:
                verdicts.append((DENY, forced[index]))
            else:
                verdicts.append(self.policy.evaluate(self.engine.db, event))
        denies = [
            (index, reason)
            for index, (verdict, reason) in enumerate(verdicts)
            if verdict == DENY
        ]
        if not denies:
            for event in events:
                self.policy.audit_event(event, ALLOW, "")
            return None
        if entry_seq and self.wal is not None and forced is None:
            # Durable before the ERR goes out: a replayer must never be
            # able to resurrect (grant) a decision this process refused.
            try:
                tombstone = self.wal.append_audit(entry_seq, denies, sync=True)
                self._skip_turn(tombstone.seq)
            except (OSError, JournalError):
                self._count("journal_errors")
        for index, reason in denies:
            self.policy.audit_event(events[index], DENY, reason)
        self._count("policy_denials", len(denies))
        first_reason = denies[0][1]
        if len(events) == 1:
            return err_response(f"policy: {first_reason}")
        return err_response(
            f"policy: {len(denies)} of {len(events)} events denied; "
            f"nothing posted ({first_reason})"
        )

    def _apply_policy(self, action: str, spec: dict) -> str:
        """Apply one (journaled) lifecycle command in seq order."""
        try:
            self.policy.apply_lifecycle(action, spec)
        except PolicyError as exc:
            # Race loser: admitted before the winner applied.  The deny
            # is already audited; replay hits the same state in the same
            # order and re-derives it.
            self._count("policy_rejected")
            return err_response(f"policy: {exc}")
        self._count("policy_changes")
        if action == "policy_propose" and self.policy.pending is not None:
            return ok_response(
                f"{self.policy.pending.document.version} pending"
            )
        return ok_response(f"{self.policy.version} active")

    def _admit_post(self, event: EventMessage) -> str:
        """Run one admitted event; shared by the wire path and recovery."""
        try:
            stamped = self.post_message(event)
        except (EngineError, MetaDBError) as exc:
            self._count("engine_errors")
            return err_response(f"engine: {exc}")
        return ok_response(str(stamped.seq))

    def _admit_batch(self, events: tuple[EventMessage, ...]) -> str:
        # Atomic accept: stamp everything first, then drain once, so the
        # batch occupies one contiguous FIFO window in the queue.
        stamped = [self.engine.post_message(event) for event in events]
        self._count("batches")
        try:
            if self.process_after_post:
                self.engine.run()
        except (EngineError, MetaDBError) as exc:
            self._count("engine_errors")
            # Withdraw the unprocessed remainder: an ERR response
            # promises the batch was rejected, so the events still
            # queued must not execute during the next post's drain.
            self.engine.queue.discard({event.seq for event in stamped})
            return err_response(f"engine: {exc}")
        return ok_response(" ".join(str(event.seq) for event in stamped))

    # -- durability: recovery and checkpointing -------------------------------

    def apply_journal_entry(
        self, entry: JournalEntry, forced: dict[int, str] | None = None
    ) -> str:
        """Re-admit one recovered journal entry (startup replay).

        Runs the exact admission code the wire path runs — engine errors
        and policy denials reproduce deterministically as the same
        ``ERR`` the original client saw — but skips validation,
        journaling and busy checks: the entry was already admitted once.
        *forced* maps member index → deny reason from a tombstone, so a
        live ``policy_fault`` denial (non-deterministic) replays as the
        deny it was, never as a grant.
        """
        if entry.kind == "event":
            return self._apply_write(
                "event", (payload_event(entry.payload),), forced=forced
            )
        if entry.kind == "batch":
            events = tuple(
                payload_event(payload) for payload in entry.payload["events"]
            )
            return self._apply_write("batch", events, forced=forced)
        if entry.kind == "policy":
            return self._apply_policy(
                entry.payload["action"], entry.payload.get("spec", {})
            )
        if entry.kind == "audit":
            return ok_response("audit tombstone")
        raise JournalError(f"unknown journal entry kind {entry.kind!r}")

    def recover(
        self,
        entries,
        *,
        db_watermark: int = 0,
        policy_watermark: int = 0,
    ) -> int:
        """Replay recovered WAL entries into engine AND governance state.

        ``db_watermark`` (``db.wal_seq``) is the last event/batch already
        inside the restored database; ``policy_watermark`` is the last
        lifecycle entry already inside the restored policy sidecar.  The
        two can differ by one checkpoint if the process died between the
        database save and the sidecar write — replaying the gap is
        idempotent for governance (specs re-derive the same versions)
        and skipped for data.  Deny tombstones are pre-scanned and fed
        back as forced denials; they are never re-appended (recovery
        must not grow the journal it is reading).  Returns the number of
        entries applied.
        """
        entries = list(entries)
        tombstones: dict[int, dict[int, str]] = {}
        for entry in entries:
            if entry.kind == "audit":
                tombstones[int(entry.payload["ref"])] = {
                    int(index): str(reason)
                    for index, reason in entry.payload.get("denied", [])
                }
        applied = 0
        for entry in entries:
            if entry.kind == "audit":
                continue
            if entry.kind == "policy":
                if entry.seq <= policy_watermark:
                    continue
            elif entry.seq <= db_watermark:
                continue
            self.apply_journal_entry(entry, forced=tombstones.get(entry.seq))
            applied += 1
        return applied

    def _maybe_checkpoint(self) -> None:
        if (
            self.checkpointer is None
            or self.checkpoint_every is None
            or self._events_since_checkpoint < self.checkpoint_every
        ):
            return
        self.run_checkpoint()

    def run_checkpoint(self) -> bool:
        """Persist the database and truncate the journal (if configured).

        Failure is survivable by design: the journal is kept, the
        counter keeps accumulating, and the next post retries.
        """
        if self.checkpointer is None:
            return False
        if self.checkpointer():
            self._count("checkpoints")
            self._events_since_checkpoint = 0
            return True
        self._count("checkpoint_failures")
        return False

    def health_counters(
        self, extra: dict[str, int] | None = None
    ) -> dict[str, int]:
        """Durability/backpressure gauges; lock-free like ``status``."""
        counters = {
            "queue": len(self.engine.queue),
            "stale": len(self._stale_wire),
            "subscribers": self.subscriber_count,
            "busy_rejections": self.stats.get("busy_rejections", 0),
            "engine_errors": self.stats.get("engine_errors", 0),
            "journal_appends": self.stats.get("journal_appends", 0),
            "journal_errors": self.stats.get("journal_errors", 0),
            "checkpoints": self.stats.get("checkpoints", 0),
            "checkpoint_failures": self.stats.get("checkpoint_failures", 0),
            "events_since_checkpoint": self._events_since_checkpoint,
            # Governance gauges: plain int reads off the policy object,
            # same lock-free discipline as everything above.
            "policy_version": self.policy.version,
            "policy_pending": self.policy.pending_count,
            "audit_seq": self.policy.audit_seq,
            "policy_faults": self.policy.policy_faults,
            "policy_denials": self.stats.get("policy_denials", 0),
        }
        if self.wal is not None:
            counters["journal_seq"] = self.wal.last_seq
            counters["journal_durable"] = self.wal.durable_seq
            counters["journal_applied"] = self.applied_seq
            counters["journal_checkpoint"] = self.wal.checkpoint_seq
            counters["journal_lag"] = self.wal.lag
            counters["journal_segments"] = self.wal.segment_count
            counters["journal_broken"] = int(self.wal.broken)
            counters["journal_barriers"] = self.wal.sync_barriers
        if extra:
            counters.update(extra)
        return counters

    def _handle_pending(self) -> str:
        from repro.core.state import pending_work

        work = pending_work(self.engine.db, self.engine.blueprint)
        return format_pending_response(
            [(item.oid, item.failing) for item in work]
        )

    def status_counters(self) -> dict[str, int]:
        """GIL-atomic counter snapshot: safe to read while a wave runs."""
        db = self.engine.db
        metrics = self.engine.metrics
        return {
            "objects": db.object_count,
            "links": db.link_count,
            "stale": len(self._stale_wire),
            "queue": len(self.engine.queue),
            "events_posted": metrics.events_posted,
            "waves": metrics.waves,
            "deliveries": metrics.deliveries,
            "subscribers": self.subscriber_count,
            "lines_seen": self.lines_seen,
            "clock": db.clock,
        }
