"""In-process event bus: the transport used by tests and single-process
projects.

The bus speaks the same line dialect as the TCP server, so a wrapper
written against the bus works unchanged against the network — the
"generic interface which facilitates the tool integration" of the
conclusion.  ``process_after_post`` controls whether each accepted event
is processed immediately (synchronous projects, the default) or left in
the queue for an explicit :meth:`drain` (batching, benchmarks).

Beyond posting, the bus is the server's command back end:

* ``stale`` answers from a wire-format mirror of the database's
  incremental stale set, kept current by a stale-change listener —
  O(result), no scan, safe to read from any thread;
* ``subscribe`` registers a per-connection callback; the same listener
  fans ``STALE <oid>`` / ``FRESH <oid>`` lines out to every subscriber
  the moment a wave re-buckets an object;
* ``batch`` validates every target before posting anything (atomic
  accept/reject), then drains the queue once;
* engine failures (strict-mode :class:`EngineError`, database errors)
  are converted to ``ERR`` responses instead of escaping to the
  transport — a bad post must never kill the connection.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core.engine import BlueprintEngine, EngineError
from repro.core.events import EventMessage
from repro.metadb.errors import MetaDBError
from repro.metadb.links import Direction
from repro.metadb.oid import OID
from repro.network.protocol import (
    Command,
    ProtocolError,
    err_response,
    format_notification,
    format_pending_response,
    format_query_response,
    format_stale_response,
    format_status_response,
    ok_response,
    parse_command,
)

#: Subscriber signature: receives one formatted notification line.
Subscriber = Callable[[str], None]


@dataclass
class EventBus:
    """Line-protocol front end over one :class:`BlueprintEngine`."""

    engine: BlueprintEngine
    process_after_post: bool = True
    lines_seen: int = 0
    errors: list[str] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Wire-format mirror of the incremental stale set.  The listener
        # fires from whichever thread runs the wave; readers take the
        # same small lock, so `stale` answers consistently without ever
        # touching database internals mid-mutation.
        self._stale_lock = threading.Lock()
        # Counter increments need their own lock: the server's lock-free
        # read paths (query/stale/status/ping) count from many handler
        # threads at once, and `+=` on a shared int loses updates.
        self._stats_lock = threading.Lock()
        self._stale_wire: set[OID] = set(self.engine.db.stale_set())
        self._subscribers: list[Subscriber] = []
        self._closed = False
        self.engine.db.on_stale_change(self._on_stale_change)

    def close(self) -> None:
        """Detach from the database's stale-listener channel.

        Without this a short-lived bus over a long-lived engine keeps
        its listener (and therefore itself) alive on the database for
        every future stale transition.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.engine.db.remove_stale_listener(self._on_stale_change)
        except ValueError:
            pass

    def reopen(self) -> None:
        """Undo :meth:`close`: reseed the mirror and re-listen."""
        if not self._closed:
            return
        self._closed = False
        with self._stale_lock:
            self._stale_wire = set(self.engine.db.stale_set())
        self.engine.db.on_stale_change(self._on_stale_change)

    # -- programmatic posting -------------------------------------------------

    def post(
        self,
        name: str,
        target: OID | str,
        direction: Direction | str = Direction.DOWN,
        arg: str = "",
        user: str = "",
    ) -> EventMessage:
        event = self.engine.post(name, target, direction, arg, user)
        if self.process_after_post:
            self.engine.run()
        return event

    def post_message(self, event: EventMessage) -> EventMessage:
        stamped = self.engine.post_message(event)
        if self.process_after_post:
            self.engine.run()
        return stamped

    def drain(self) -> int:
        """Process everything pending; returns the number of waves run."""
        return self.engine.run()

    # -- stale mirror / subscriptions ----------------------------------------

    def _on_stale_change(self, oid: OID, is_stale: bool) -> None:
        with self._stale_lock:
            if is_stale:
                self._stale_wire.add(oid)
            else:
                self._stale_wire.discard(oid)
        self.publish(format_notification(oid, is_stale))

    def stale_snapshot(self) -> list[OID]:
        """A consistent copy of the stale set, answered from the mirror."""
        with self._stale_lock:
            return list(self._stale_wire)

    def subscribe(self, subscriber: Subscriber) -> None:
        """Send every future ``STALE`` / ``FRESH`` line to *subscriber*."""
        with self._stale_lock:
            if subscriber not in self._subscribers:
                self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        with self._stale_lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    @property
    def subscriber_count(self) -> int:
        with self._stale_lock:
            return len(self._subscribers)

    def publish(self, line: str) -> None:
        """Fan one notification line out to every subscriber.

        A subscriber that raises (closed socket, slow client gone) is
        dropped; delivery to the others continues.
        """
        with self._stale_lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber(line)
            except Exception:
                self.unsubscribe(subscriber)
                self._count("subscribers_dropped")
        if subscribers:
            self._count("notifications_sent", len(subscribers))

    def _count(self, name: str, by: int = 1) -> None:
        with self._stats_lock:
            self.stats[name] = self.stats.get(name, 0) + by

    # -- line protocol -----------------------------------------------------------

    def parse_line(self, line: str) -> Command:
        """Count and parse one wire line (shared with the TCP handler)."""
        with self._stats_lock:
            self.lines_seen += 1
        try:
            return parse_command(line)
        except ProtocolError as exc:
            self.errors.append(str(exc))
            raise

    def handle_line(self, line: str, subscriber: Subscriber | None = None) -> str:
        """Process one wire line, returning the response line."""
        try:
            command = self.parse_line(line)
        except ProtocolError as exc:
            return err_response(str(exc))
        return self.handle_command(command, subscriber=subscriber)

    def handle_command(
        self, command: Command, subscriber: Subscriber | None = None
    ) -> str:
        if command.kind == "ping":
            return "PONG"
        if command.kind == "quit":
            return "BYE"
        if command.kind == "post":
            assert command.event is not None
            return self._handle_post(command.event)
        if command.kind == "batch":
            return self._handle_batch(command.events)
        if command.kind == "query":
            assert command.oid is not None
            obj = self.engine.db.find(command.oid)
            if obj is None:
                return err_response(f"unknown OID {command.oid}")
            return format_query_response(obj.properties.as_dict())
        if command.kind == "stale":
            self._count("stale_from_set")
            return format_stale_response(self.stale_snapshot())
        if command.kind == "pending":
            return self._handle_pending()
        if command.kind == "status":
            return format_status_response(self.status_counters())
        if command.kind == "subscribe":
            if subscriber is None:
                return err_response(
                    "subscribe requires a streaming connection "
                    "(use the TCP server or EventBus.subscribe)"
                )
            self.subscribe(subscriber)
            return ok_response("subscribed")
        return err_response(f"unhandled command kind {command.kind!r}")

    # -- command back ends ----------------------------------------------------

    def _handle_post(self, event: EventMessage) -> str:
        # Validate the target at post time: silently dropping the event
        # in _deliver (non-strict) or killing the connection (strict)
        # are both worse than an honest ERR.
        if self.engine.db.find(event.target) is None:
            self._count("posts_rejected")
            return err_response(f"unknown OID {event.target.wire()}")
        try:
            stamped = self.post_message(event)
        except (EngineError, MetaDBError) as exc:
            self._count("engine_errors")
            return err_response(f"engine: {exc}")
        return ok_response(str(stamped.seq))

    def _handle_batch(self, events: tuple[EventMessage, ...]) -> str:
        if not events:
            return err_response("batch of zero events")
        unknown = [
            event.target.wire()
            for event in events
            if self.engine.db.find(event.target) is None
        ]
        if unknown:
            self._count("posts_rejected", len(unknown))
            return err_response(
                f"unknown OID {' '.join(sorted(set(unknown)))}; nothing posted"
            )
        # Atomic accept: stamp everything first, then drain once, so the
        # batch occupies one contiguous FIFO window in the queue.
        stamped = [self.engine.post_message(event) for event in events]
        self._count("batches")
        try:
            if self.process_after_post:
                self.engine.run()
        except (EngineError, MetaDBError) as exc:
            self._count("engine_errors")
            # Withdraw the unprocessed remainder: an ERR response
            # promises the batch was rejected, so the events still
            # queued must not execute during the next post's drain.
            self.engine.queue.discard({event.seq for event in stamped})
            return err_response(f"engine: {exc}")
        return ok_response(" ".join(str(event.seq) for event in stamped))

    def _handle_pending(self) -> str:
        from repro.core.state import pending_work

        work = pending_work(self.engine.db, self.engine.blueprint)
        return format_pending_response(
            [(item.oid, item.failing) for item in work]
        )

    def status_counters(self) -> dict[str, int]:
        """GIL-atomic counter snapshot: safe to read while a wave runs."""
        db = self.engine.db
        metrics = self.engine.metrics
        return {
            "objects": db.object_count,
            "links": db.link_count,
            "stale": len(self._stale_wire),
            "queue": len(self.engine.queue),
            "events_posted": metrics.events_posted,
            "waves": metrics.waves,
            "deliveries": metrics.deliveries,
            "subscribers": self.subscriber_count,
            "lines_seen": self.lines_seen,
            "clock": db.clock,
        }
