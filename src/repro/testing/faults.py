"""Fault injection: named crash points, flaky sockets, faulty SQLite.

The crash-recovery suite (``tests/network/test_crash_recovery.py``)
asserts that a ``damocles serve --journal`` process killed at the worst
possible moments restarts into exactly the state of a never-crashed
run.  "Worst possible moment" is made reproducible by *named crash
points*: zero-cost markers compiled into the durability-critical paths
(``crash_point("mid-journal-append")`` between the two halves of a
journal write, ``crash_point("mid-wave")`` between the durable append
and the engine wave, ``crash_point("mid-flush")`` between the database
checkpoint and the journal truncation, ``crash_point("mid-policy-apply")``
between a policy lifecycle command's validation and its journal entry,
``crash_point("mid-audit-append")`` inside the governed policy's audit
append).  A production process never arms them; a test arms them either

* in process — :func:`install_crash_point` makes the Nth hit raise
  :class:`InjectedCrash` (a ``BaseException``, so no ``except
  Exception`` recovery path can accidentally swallow the "crash"); or
* across a process boundary — the environment variable
  ``DAMOCLES_CRASH_POINTS="mid-wave:2,mid-flush"`` (``name[:nth-hit]``)
  is parsed at import, and an armed hit calls ``os._exit(137)``: no
  atexit handlers, no buffer flushing, no save-back — the closest a
  test can get to SIGKILL while choosing the instruction it lands on.

Crash points model a process dying; *fault points* model a component
failing while the process lives on.  :func:`fault_point` markers sit in
code that promises fail-closed behaviour (``fault_point("policy-eval")``
inside the governed policy's rule evaluation); arming one with
:func:`install_fault_point` makes the next N hits raise
:class:`InjectedFault` — a plain ``Exception`` on purpose, because the
assertion under test is precisely that the surrounding code converts an
unexpected evaluation error into an audited deny rather than a grant.

The rest of the module wraps the two I/O dependencies the server has:

* :class:`FlakySocket` — a socket proxy injecting send/recv failures,
  partial writes, delays and connection drops on a per-call schedule
  (drives the self-healing client's retry/reconnect paths);
* :class:`FaultyConnection` — a ``sqlite3.Connection`` proxy that
  raises ``sqlite3.OperationalError`` ("disk I/O error") on the Nth
  execute, or on statements matching a substring (drives the
  checkpoint-failure and save-back-failure paths).
"""

from __future__ import annotations

import os
import sqlite3
import time
from dataclasses import dataclass, field


class InjectedCrash(BaseException):
    """An in-process stand-in for a process kill at a crash point.

    Derives from ``BaseException`` so the engine/bus ``except
    Exception`` error paths cannot convert a simulated crash into a
    handled error.
    """


class InjectedFault(Exception):
    """A recoverable injected failure (socket hiccup, disk error)."""


# ---------------------------------------------------------------------------
# named crash points
# ---------------------------------------------------------------------------

_EXIT_CODE = 137  # what a SIGKILLed process reports (128 + 9)


@dataclass
class _CrashPoint:
    name: str
    remaining: int  # crashes when this reaches 0 on a hit
    action: str  # "raise" | "exit"
    hits: int = 0


#: Armed crash points by name.  Empty in production: the fast path of
#: :func:`crash_point` is one dict ``get`` on an empty dict.
_armed: dict[str, _CrashPoint] = {}


def crash_point(name: str) -> None:
    """Marker called from durability-critical code; no-op unless armed."""
    point = _armed.get(name)
    if point is None:
        return
    point.hits += 1
    point.remaining -= 1
    if point.remaining > 0:
        return
    del _armed[name]
    if point.action == "exit":
        os._exit(_EXIT_CODE)
    raise InjectedCrash(f"crash point {name!r} (hit {point.hits})")


def install_crash_point(
    name: str, *, nth: int = 1, action: str = "raise"
) -> None:
    """Arm *name* to fire on its *nth* hit.

    ``action="raise"`` raises :class:`InjectedCrash` in the hitting
    thread (in-process tests); ``action="exit"`` kills the whole
    process with ``os._exit`` (subprocess tests).
    """
    if nth < 1:
        raise ValueError(f"nth must be >= 1, got {nth}")
    if action not in ("raise", "exit"):
        raise ValueError(f"unknown crash action {action!r}")
    _armed[name] = _CrashPoint(name=name, remaining=nth, action=action)


def clear_crash_points() -> None:
    """Disarm everything (test teardown)."""
    _armed.clear()


def armed_crash_points() -> dict[str, int]:
    """Remaining-hit counts by name (diagnostics)."""
    return {name: point.remaining for name, point in _armed.items()}


def load_crash_points_from_env(value: str | None = None) -> int:
    """Arm crash points from ``DAMOCLES_CRASH_POINTS``.

    Format: comma-separated ``name`` or ``name:nth`` items.  Points
    armed from the environment always use ``action="exit"`` — the
    variable exists so a *subprocess* can be killed mid-operation.
    Returns the number of points armed.
    """
    if value is None:
        value = os.environ.get("DAMOCLES_CRASH_POINTS", "")
    count = 0
    for item in value.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, nth_text = item.partition(":")
        install_crash_point(
            name.strip(), nth=int(nth_text) if nth_text else 1, action="exit"
        )
        count += 1
    return count


# Arm from the environment at import: the serve subprocess a crash test
# launches picks its kill schedule up without any code path changes.
load_crash_points_from_env()


# ---------------------------------------------------------------------------
# named fault points (recoverable failures, not process deaths)
# ---------------------------------------------------------------------------


@dataclass
class _FaultPoint:
    name: str
    remaining: int  # -1 = fire on every hit
    hits: int = 0


#: Armed fault points by name; same empty-dict fast path as crash points.
_fault_points: dict[str, _FaultPoint] = {}


def fault_point(name: str) -> None:
    """Marker in fail-closed code paths; raises when armed.

    Unlike :func:`crash_point`, the injected error is a regular
    :class:`InjectedFault` (``Exception``) — the point is to prove the
    caller's ``except Exception`` path degrades safely (audited deny,
    error response) instead of granting or crashing.
    """
    point = _fault_points.get(name)
    if point is None:
        return
    point.hits += 1
    if point.remaining == 0:
        return
    if point.remaining > 0:
        point.remaining -= 1
        if point.remaining == 0:
            del _fault_points[name]
    raise InjectedFault(f"fault point {name!r} (hit {point.hits})")


def install_fault_point(name: str, *, times: int = 1) -> None:
    """Arm *name* to raise on its next *times* hits (-1 = every hit)."""
    if times == 0 or times < -1:
        raise ValueError(f"times must be positive or -1, got {times}")
    _fault_points[name] = _FaultPoint(name=name, remaining=times)


def clear_fault_points() -> None:
    """Disarm every fault point (test teardown)."""
    _fault_points.clear()


def armed_fault_points() -> dict[str, int]:
    """Remaining-raise counts by name (diagnostics)."""
    return {name: point.remaining for name, point in _fault_points.items()}


# ---------------------------------------------------------------------------
# flaky sockets
# ---------------------------------------------------------------------------


@dataclass
class SocketFaultPlan:
    """What should go wrong, and when (counts are per wrapped socket).

    ``fail_sends`` / ``fail_recvs``: the first N calls raise ``OSError``
    (``ECONNRESET``-style).  ``partial_first_send``: the first send
    writes only that many bytes before raising, modelling a torn write.
    ``drop_after_sends``: after N successful sends the connection is
    shut down, so the peer sees EOF.  ``delay_seconds`` sleeps before
    every operation (slow-network / slow-subscriber shaping).
    """

    fail_sends: int = 0
    fail_recvs: int = 0
    partial_first_send: int | None = None
    drop_after_sends: int | None = None
    delay_seconds: float = 0.0


class FlakySocket:
    """A socket proxy that misbehaves according to a fault plan.

    Wraps a connected socket; everything not listed here delegates to
    the real socket (``fileno`` keeps ``select`` working, ``makefile``
    keeps buffered readers working — reads through a makefile are not
    fault-injected, use ``recv`` paths to exercise read faults).
    """

    def __init__(self, sock, plan: SocketFaultPlan | None = None) -> None:
        self._sock = sock
        self.plan = plan or SocketFaultPlan()
        self.sends = 0
        self.recvs = 0
        self.injected: list[str] = []

    def __getattr__(self, name: str):
        return getattr(self._sock, name)

    def __enter__(self) -> "FlakySocket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._sock.close()

    def _delay(self) -> None:
        if self.plan.delay_seconds:
            time.sleep(self.plan.delay_seconds)

    def sendall(self, data: bytes) -> None:
        self._delay()
        if self.plan.fail_sends > 0:
            self.plan.fail_sends -= 1
            self.injected.append("send-fail")
            raise OSError(104, "injected connection reset on send")
        if self.plan.partial_first_send is not None:
            cut = self.plan.partial_first_send
            self.plan.partial_first_send = None
            self._sock.sendall(data[:cut])
            self.injected.append("partial-send")
            raise OSError(32, f"injected broken pipe after {cut} bytes")
        self._sock.sendall(data)
        self.sends += 1
        if (
            self.plan.drop_after_sends is not None
            and self.sends >= self.plan.drop_after_sends
        ):
            self.plan.drop_after_sends = None
            self.injected.append("drop")
            try:
                self._sock.shutdown(2)  # SHUT_RDWR
            except OSError:
                pass

    def send(self, data: bytes) -> int:
        self.sendall(data)
        return len(data)

    def recv(self, bufsize: int) -> bytes:
        self._delay()
        if self.plan.fail_recvs > 0:
            self.plan.fail_recvs -= 1
            self.injected.append("recv-fail")
            raise OSError(104, "injected connection reset on recv")
        data = self._sock.recv(bufsize)
        self.recvs += 1
        return data


# ---------------------------------------------------------------------------
# faulty SQLite connections
# ---------------------------------------------------------------------------


@dataclass
class SqliteFaultPlan:
    """When the wrapped connection should report disk trouble.

    ``fail_after_statements``: statements before this index succeed,
    everything after raises.  ``fail_matching``: any statement whose SQL
    contains this substring raises (e.g. ``"INSERT INTO objects"`` to
    fail mid-flush).  ``operational_errors``: how many times to raise
    before recovering (-1 = forever).
    """

    fail_after_statements: int | None = None
    fail_matching: str | None = None
    operational_errors: int = -1
    message: str = "injected disk I/O error"
    statements: int = 0
    raised: int = 0

    def should_fail(self, sql: str) -> bool:
        self.statements += 1
        if self.operational_errors == 0:
            return False
        armed = False
        if (
            self.fail_after_statements is not None
            and self.statements > self.fail_after_statements
        ):
            armed = True
        if self.fail_matching is not None and self.fail_matching in sql:
            armed = True
        if armed:
            if self.operational_errors > 0:
                self.operational_errors -= 1
            self.raised += 1
        return armed


class FaultyConnection:
    """A ``sqlite3.Connection`` proxy that injects ``OperationalError``.

    Only ``execute`` / ``executemany`` / ``executescript`` are guarded;
    transaction control and everything else pass through, so the store's
    ``with connection:`` blocks keep their rollback semantics while the
    statements inside them blow up on schedule.
    """

    def __init__(
        self, connection: sqlite3.Connection, plan: SqliteFaultPlan | None = None
    ) -> None:
        self._connection = connection
        self.plan = plan or SqliteFaultPlan()

    def __getattr__(self, name: str):
        return getattr(self._connection, name)

    def __enter__(self):
        return self._connection.__enter__()

    def __exit__(self, *exc_info):
        return self._connection.__exit__(*exc_info)

    def _check(self, sql: str) -> None:
        if self.plan.should_fail(sql):
            raise sqlite3.OperationalError(self.plan.message)

    def execute(self, sql: str, *args):
        self._check(sql)
        return self._connection.execute(sql, *args)

    def executemany(self, sql: str, *args):
        self._check(sql)
        return self._connection.executemany(sql, *args)

    def executescript(self, script: str):
        self._check(script)
        return self._connection.executescript(script)
