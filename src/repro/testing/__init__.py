"""Test-support package: fault injection for crash-safety suites.

Shipped inside the main package (not under ``tests/``) because the
production modules carry named crash points — see
:mod:`repro.testing.faults` — that must be importable wherever the
server runs, including the subprocess a crash-recovery test SIGKILLs.
"""
