"""Design tasks: the paper's future-work extension, implemented.

"We are currently investigating ways to incorporate the notion of design
tasks to the project BluePrint which gives a higher level of description
of design activities and their environment." (section 5)

A :class:`DesignTask` names a unit of project work ("verify the CPU
netlist"), scopes it to a view (optionally one block), and states its
completion as an expression over the data's properties — the same
expression language the blueprint uses.  A :class:`TaskBoard` evaluates
tasks against the live meta-database, honouring dependencies, so project
leads see progress derived from actual design state rather than
hand-updated tickets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.expressions import Expression, truthy
from repro.core.state import evaluate_on
from repro.metadb.database import MetaDatabase
from repro.metadb.objects import MetaObject


class TaskState(enum.Enum):
    BLOCKED = "blocked"      # a dependency is not done
    WAITING = "waiting"      # no data exists yet for the scope
    IN_PROGRESS = "in_progress"  # data exists, goal not yet met
    DONE = "done"            # goal met on every in-scope latest version

    def __str__(self) -> str:
        return self.value


@dataclass
class DesignTask:
    """One unit of project work with a data-derived completion goal."""

    name: str
    view: str
    goal: Expression
    block: str | None = None  # None = every block of the view
    assignee: str = ""
    description: str = ""
    depends_on: tuple[str, ...] = ()

    @classmethod
    def parse(
        cls,
        name: str,
        view: str,
        goal: str,
        *,
        block: str | None = None,
        assignee: str = "",
        description: str = "",
        depends_on: tuple[str, ...] = (),
    ) -> "DesignTask":
        return cls(
            name=name,
            view=view,
            goal=Expression.parse(goal),
            block=block,
            assignee=assignee,
            description=description,
            depends_on=depends_on,
        )

    def scope(self, db: MetaDatabase) -> list[MetaObject]:
        """The latest versions this task's goal is evaluated on."""
        objects: list[MetaObject] = []
        for block, view in db.lineages():
            if view != self.view:
                continue
            if self.block is not None and block != self.block:
                continue
            latest = db.latest_version(block, view)
            if latest is not None:
                objects.append(latest)
        objects.sort(key=lambda obj: obj.oid)
        return objects

    def goal_met(self, db: MetaDatabase) -> bool:
        objects = self.scope(db)
        if not objects:
            return False
        return all(truthy(evaluate_on(obj, self.goal)) for obj in objects)


@dataclass
class TaskStatus:
    """One task's evaluated status."""

    task: DesignTask
    state: TaskState
    scope_size: int
    failing: tuple[str, ...] = ()


@dataclass
class TaskBoard:
    """Evaluates a set of design tasks against the live database."""

    db: MetaDatabase
    tasks: dict[str, DesignTask] = field(default_factory=dict)

    def add(self, task: DesignTask) -> "TaskBoard":
        if task.name in self.tasks:
            raise ValueError(f"duplicate task {task.name!r}")
        for dependency in task.depends_on:
            if dependency not in self.tasks:
                raise ValueError(
                    f"task {task.name!r} depends on unknown {dependency!r}"
                )
        self.tasks[task.name] = task
        return self

    def status_of(self, name: str) -> TaskStatus:
        task = self.tasks[name]
        for dependency in task.depends_on:
            if self.status_of(dependency).state is not TaskState.DONE:
                return TaskStatus(task=task, state=TaskState.BLOCKED, scope_size=0)
        objects = task.scope(self.db)
        if not objects:
            return TaskStatus(task=task, state=TaskState.WAITING, scope_size=0)
        failing = tuple(
            obj.oid.dotted()
            for obj in objects
            if not truthy(evaluate_on(obj, task.goal))
        )
        state = TaskState.DONE if not failing else TaskState.IN_PROGRESS
        return TaskStatus(
            task=task, state=state, scope_size=len(objects), failing=failing
        )

    def statuses(self) -> list[TaskStatus]:
        return [self.status_of(name) for name in sorted(self.tasks)]

    def done_fraction(self) -> float:
        statuses = self.statuses()
        if not statuses:
            return 1.0
        done = sum(1 for status in statuses if status.state is TaskState.DONE)
        return done / len(statuses)

    def report(self) -> str:
        from repro.analysis.reporting import ascii_table

        rows = []
        for status in self.statuses():
            rows.append(
                (
                    status.task.name,
                    status.task.assignee or "-",
                    str(status.state),
                    status.scope_size,
                    ", ".join(status.failing) or "-",
                )
            )
        return ascii_table(
            ["task", "assignee", "state", "scope", "failing"], rows
        )
