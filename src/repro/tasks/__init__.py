"""Design tasks: data-derived project work items (the paper's section 5
future work)."""

from repro.tasks.model import DesignTask, TaskBoard, TaskState, TaskStatus

__all__ = ["DesignTask", "TaskBoard", "TaskState", "TaskStatus"]
