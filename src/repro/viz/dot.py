"""Graphviz DOT renderings of flows and databases.

The paper's conclusion lists "a graphical interface to visualize the
design state relative to its flow" as work in progress; these renderers
are that feature in 2020s clothing.  :func:`blueprint_to_dot` draws the
Figure 5 representation (views, links, propagated events);
:func:`database_to_dot` draws the live meta-database with staleness
highlighting.
"""

from __future__ import annotations

from repro.core.blueprint import Blueprint
from repro.metadb.database import MetaDatabase
from repro.metadb.links import LinkClass


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def blueprint_to_dot(blueprint: Blueprint) -> str:
    """The flow graph of a blueprint: one node per view, one edge per
    link template (labelled TYPE + PROPAGATE), a self-loop for use links."""
    lines = [f"digraph {_quote(blueprint.name)} {{"]
    lines.append("  rankdir=TB;")
    lines.append("  node [shape=box, fontname=Helvetica];")
    for view_name in blueprint.tracked_views():
        view = blueprint.effective(view_name)
        assert view is not None
        badges = []
        if view.lets:
            badges.append("state:" + ",".join(sorted(view.lets)))
        label = view_name if not badges else f"{view_name}\\n{'; '.join(badges)}"
        lines.append(f"  {_quote(view_name)} [label={_quote(label)}];")
    for view_name in blueprint.tracked_views():
        view = blueprint.effective(view_name)
        assert view is not None
        for template in view.link_templates:
            label_parts = []
            if template.link_type:
                label_parts.append(template.link_type)
            if template.propagates:
                label_parts.append(",".join(sorted(template.propagates)))
            if template.move:
                label_parts.append("move")
            edge_label = _quote("\\n".join(label_parts))
            lines.append(
                f"  {_quote(template.from_view)} -> {_quote(view_name)} "
                f"[label={edge_label}];"
            )
        if view.use_link is not None:
            events = ",".join(sorted(view.use_link.propagates))
            lines.append(
                f"  {_quote(view_name)} -> {_quote(view_name)} "
                f"[label={_quote('hierarchy ' + events)}, style=dashed];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def database_to_dot(
    db: MetaDatabase, *, latest_only: bool = True, highlight_stale: bool = True
) -> str:
    """The live object graph; stale objects (uptodate == false) in red."""
    lines = [f"digraph {_quote(db.name)} {{"]
    lines.append("  rankdir=LR;")
    lines.append("  node [shape=record, fontname=Helvetica];")
    wanted = set()
    if latest_only:
        for block, view in db.lineages():
            obj = db.latest_version(block, view)
            if obj is not None:
                wanted.add(obj.oid)
    else:
        wanted = set(db.oids())
    for oid in sorted(wanted):
        obj = db.get(oid)
        attributes = []
        if highlight_stale and obj.get("uptodate") is False:
            attributes.append("color=red, fontcolor=red")
        attr_text = (", " + ", ".join(attributes)) if attributes else ""
        lines.append(
            f"  {_quote(oid.dotted())} [label={_quote(oid.dotted())}{attr_text}];"
        )
    for link in db.links():
        if link.source not in wanted or link.dest not in wanted:
            continue
        style = "dashed" if link.link_class is LinkClass.USE else "solid"
        label = link.link_type or link.link_class.value
        lines.append(
            f"  {_quote(link.source.dotted())} -> {_quote(link.dest.dotted())} "
            f"[label={_quote(label)}, style={style}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
