"""A static HTML project dashboard.

The paper's conclusion promises "a graphical interface to visualize the
design state relative to its flow"; this renderer produces that as a
single self-contained HTML file: per-view health, the pending-work list,
the flow structure, and recent notifications — everything a project lead
checks each morning.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.core.blueprint import Blueprint
from repro.core.engine import BlueprintEngine
from repro.core.state import pending_work, project_status
from repro.metadb.database import MetaDatabase

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: 0.2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #bbb; padding: 0.3em 0.8em; text-align: left; }
th { background: #eee; }
tr.stale td { background: #fdd; }
tr.done td { background: #dfd; }
.flow { font-family: monospace; white-space: pre; background: #f7f7f7;
        padding: 1em; border: 1px solid #ddd; }
.empty { color: #070; font-weight: bold; }
"""


def _table(headers: list[str], rows: list[tuple], row_classes: list[str] | None = None) -> str:
    parts = ["<table>", "<tr>"]
    for header in headers:
        parts.append(f"<th>{html.escape(header)}</th>")
    parts.append("</tr>")
    for index, row in enumerate(rows):
        cls = ""
        if row_classes is not None and row_classes[index]:
            cls = f' class="{row_classes[index]}"'
        parts.append(f"<tr{cls}>")
        for cell in row:
            parts.append(f"<td>{html.escape(str(cell))}</td>")
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def render_dashboard(
    db: MetaDatabase,
    blueprint: Blueprint,
    engine: BlueprintEngine | None = None,
    title: str = "Project status",
) -> str:
    """Render the full dashboard as an HTML document string."""
    status = project_status(db, blueprint)
    work = pending_work(db, blueprint)

    status_rows = []
    status_classes = []
    for view_status in sorted(status.views.values(), key=lambda s: s.view):
        status_rows.append(
            (
                view_status.view,
                view_status.objects,
                view_status.latest,
                view_status.up_to_date,
                view_status.state_ok,
            )
        )
        status_classes.append("done" if view_status.complete else "")

    work_rows = [(item.oid.dotted(), ", ".join(item.failing)) for item in work]

    from repro.viz.ascii_flow import render_flow

    sections = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>blueprint <b>{html.escape(blueprint.name)}</b> — "
        f"{db.object_count} objects, {db.link_count} links, "
        f"clock t{db.clock}</p>",
        "<h2>View health</h2>",
        _table(
            ["view", "objects", "latest", "up to date", "state ok"],
            status_rows,
            status_classes,
        ),
        "<h2>Pending work</h2>",
    ]
    if work_rows:
        sections.append(
            _table(["OID", "failing checks"], work_rows, ["stale"] * len(work_rows))
        )
    else:
        sections.append(
            "<p class='empty'>project is at its planned state — nothing "
            "pending</p>"
        )
    sections.append("<h2>Flow</h2>")
    sections.append(f"<div class='flow'>{html.escape(render_flow(blueprint))}</div>")
    if engine is not None and engine.notifications:
        sections.append("<h2>Notifications</h2>")
        sections.append(
            _table(["message"], [(m,) for m in engine.notifications[-20:]])
        )
    sections.append("</body></html>")
    return "\n".join(sections)


def write_dashboard(
    db: MetaDatabase,
    blueprint: Blueprint,
    path: Path | str,
    engine: BlueprintEngine | None = None,
    title: str = "Project status",
) -> Path:
    """Render and write the dashboard; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_dashboard(db, blueprint, engine, title))
    return path
