"""Visualisation: DOT and ASCII renderings of flows and design state
(the paper's future-work GUI, realised as renderers)."""

from repro.viz.ascii_flow import (
    EDTC_CLASSIC_EDGES,
    render_classic,
    render_flow,
    render_pending,
    render_status,
)
from repro.viz.dot import blueprint_to_dot, database_to_dot
from repro.viz.html import render_dashboard, write_dashboard

__all__ = [
    "blueprint_to_dot",
    "database_to_dot",
    "render_flow",
    "render_classic",
    "render_status",
    "render_pending",
    "render_dashboard",
    "write_dashboard",
    "EDTC_CLASSIC_EDGES",
]
