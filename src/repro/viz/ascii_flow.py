"""Plain-text renderings of flows and project state.

``render_flow`` prints the Figure 5 view of a blueprint; ``render_status``
prints the per-view health table designers would query; ``render_classic``
prints the Figure 4 (tool-centric) representation for side-by-side
comparison — the pair of figures experiment F4 regenerates.
"""

from __future__ import annotations

from repro.analysis.reporting import ascii_table
from repro.core.blueprint import Blueprint
from repro.core.state import ProjectStatus, pending_work
from repro.metadb.database import MetaDatabase


def render_flow(blueprint: Blueprint) -> str:
    """The BluePrint representation: views, links and event messages."""
    lines = [f"blueprint {blueprint.name}"]
    for view_name in blueprint.tracked_views():
        view = blueprint.effective(view_name)
        assert view is not None
        lines.append(f"  [{view_name}]")
        for template in view.link_templates:
            events = ",".join(sorted(template.propagates)) or "-"
            kind = template.link_type or "derive"
            move = " (move)" if template.move else ""
            lines.append(
                f"    <- {template.from_view}  [{kind}: {events}]{move}"
            )
        if view.use_link is not None:
            events = ",".join(sorted(view.use_link.propagates)) or "-"
            move = " (move)" if view.use_link.move else ""
            lines.append(f"    <- self (hierarchy: {events}){move}")
        for event_name in sorted(view.rules):
            lines.append(f"    on {event_name}: {len(view.rules[event_name])} rule(s)")
        for let_name in sorted(view.lets):
            lines.append(f"    let {let_name} = {view.lets[let_name].to_source()}")
    return "\n".join(lines)


def render_classic(tool_edges: list[tuple[str, str, str]]) -> str:
    """The classical tool-centric flow (Figure 4): tool, input, output."""
    lines = ["classical flow (tools and views)"]
    for tool, source, dest in tool_edges:
        lines.append(f"  {source:>12} --[{tool}]--> {dest}")
    return "\n".join(lines)


#: The Figure 4 tool-centric edges of the EDTC flow.
EDTC_CLASSIC_EDGES: list[tuple[str, str, str]] = [
    ("synthesis", "HDL_model", "schematic"),
    ("sch_editor", "(designer)", "schematic"),
    ("synthesis", "synth_lib", "schematic"),
    ("netlister", "schematic", "netlist"),
    ("simulator", "HDL_model", "waves"),
    ("simulator", "netlist", "waves"),
    ("layout_editor", "(designer)", "layout"),
    ("drc", "layout", "report"),
    ("lvs", "schematic+layout", "report"),
]


def render_status(status: ProjectStatus) -> str:
    """Per-view health table (objects, latest, up-to-date, state-ok)."""
    return ascii_table(
        ["view", "objects", "latest", "up_to_date", "state_ok"],
        status.to_rows(),
    )


def render_pending(db: MetaDatabase, blueprint: Blueprint) -> str:
    """The designer's to-do list: what blocks the planned state."""
    work = pending_work(db, blueprint)
    if not work:
        return "project is at its planned state — nothing pending"
    rows = [(item.oid.dotted(), ", ".join(item.failing)) for item in work]
    return ascii_table(["OID", "failing checks"], rows)
